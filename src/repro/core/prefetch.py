"""Latency hiding by prefetching (paper Section 7.1.1).

The paper's machine hides the ~50-cycle line-fill latency by
rasterizing each triangle twice: a *prefetch* rasterizer computes texel
addresses ahead of time and issues fills for missing lines; a FIFO
buffer carries the addresses to the *texture* rasterizer, which reads
the (by then resident) texels.  If the FIFO is too shallow -- or absent
-- the texture stage stalls on every miss and "the memory latency would
constrain the performance of the system".

:class:`PrefetchPipeline` is a two-stage timing model over a real
miss sequence: the prefetcher runs ``fifo_depth`` fragments ahead of
the texture stage, fills are pipelined through a memory channel that
serves one line every ``fill_interval`` cycles after ``latency``
cycles, and the texture stage consumes one fragment per
``cycles_per_fragment``.  The output is the achieved fragment rate,
which reaches the machine's peak once the FIFO is deep enough to cover
``latency``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from . import kernels
from .cache import CacheConfig, LRUCache, to_lines
from .machine import PAPER_MACHINE, MachineModel


def fragment_miss_counts(
    addresses: np.ndarray, config: CacheConfig,
    accesses_per_fragment: int = 8, kernel: str = "vectorized",
) -> np.ndarray:
    """Number of cache misses in each fragment's texel quadruple/octet.

    Per-access outcomes (not aggregates) are needed here, folded per
    fragment; trailing accesses that do not fill a whole fragment are
    dropped.  ``kernel="vectorized"`` (default) reads the outcomes off
    :func:`repro.core.kernels.line_miss_mask` and reshapes;
    ``"reference"`` walks the sequential :class:`LRUCache`.  Both are
    exact per access.
    """
    kernels.check_kernel(kernel)
    lines = to_lines(addresses, config.line_size)
    n = len(lines) - (len(lines) % accesses_per_fragment)
    if kernel == "vectorized":
        outcomes = kernels.line_miss_mask(lines[:n], config)
    else:
        cache = LRUCache(config)
        outcomes = np.empty(n, dtype=bool)
        for index, line in enumerate(lines[:n].tolist()):
            outcomes[index] = not cache.access(line)
    return outcomes.reshape(-1, accesses_per_fragment).sum(axis=1)


@dataclass
class PrefetchResult:
    """Timing outcome of one pipeline run."""

    n_fragments: int
    total_cycles: float
    stall_cycles: float
    machine: MachineModel

    @property
    def fragments_per_second(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.n_fragments / self.total_cycles * self.machine.clock_hz

    @property
    def efficiency(self) -> float:
        """Achieved rate over the machine's port-limited peak."""
        peak_cycles = self.n_fragments * self.machine.cycles_per_fragment
        return peak_cycles / self.total_cycles if self.total_cycles else 0.0


class PrefetchPipeline:
    """Two-stage prefetch timing model.

    Parameters
    ----------
    machine:
        Clock, port width, and line-fill latency model.
    fifo_depth:
        How many fragments the prefetch rasterizer may run ahead of the
        texture rasterizer.  Depth 0 models a system with no
        prefetching: every miss exposes the full fill latency.
    fill_interval:
        Cycles between successive line-fill completions once the
        memory pipeline is streaming (bus occupancy per line); defaults
        to ``line_size / dram_bytes_per_cycle``.
    kernel:
        ``"vectorized"`` (default) resolves the fragment recurrences
        with blocked running-max scans -- blocks of ``fifo_depth``
        fragments, inside which the prefetch gate only references
        earlier blocks; ``"reference"`` walks the original per-fragment
        Python loop.  Identical timings for the integer-valued cycle
        parameters the machine model produces.
    """

    def __init__(self, machine: MachineModel = PAPER_MACHINE,
                 fifo_depth: int = 32,
                 fill_interval: Optional[float] = None,
                 kernel: str = "vectorized"):
        kernels.check_kernel(kernel)
        if fifo_depth < 0:
            raise ValueError("fifo_depth must be >= 0")
        self.machine = machine
        self.fifo_depth = fifo_depth
        self.fill_interval = fill_interval
        self.kernel = kernel

    def _timing(self, line_size: int) -> tuple:
        machine = self.machine
        interval = self.fill_interval
        if interval is None:
            interval = line_size / machine.dram_bytes_per_cycle
        return (float(machine.miss_latency_cycles(line_size)),
                float(interval), float(machine.cycles_per_fragment))

    def run(self, miss_counts: np.ndarray, line_size: int) -> PrefetchResult:
        """Walk fragments through the two-stage pipeline.

        ``miss_counts[i]`` is the number of line fills fragment ``i``
        needs (from :func:`fragment_miss_counts`).
        """
        if self.kernel == "vectorized":
            return self._run_vectorized(miss_counts, line_size)
        return self._run_reference(miss_counts, line_size)

    def _run_reference(self, miss_counts: np.ndarray,
                       line_size: int) -> PrefetchResult:
        machine = self.machine
        latency, interval, consume = self._timing(line_size)

        # The prefetcher may issue fragment i's fills once the texture
        # stage has consumed fragment i - fifo_depth; fills stream
        # through the memory channel one per `interval` after `latency`.
        memory_free = 0.0
        ready_at = np.zeros(len(miss_counts))
        texture_time = 0.0
        stall = 0.0
        finish = np.zeros(len(miss_counts))
        for index, misses in enumerate(miss_counts.tolist()):
            if self.fifo_depth > 0:
                gate_index = index - self.fifo_depth
                prefetch_time = finish[gate_index] if gate_index >= 0 else 0.0
            else:
                # No prefetch: fills start when the texture stage
                # reaches the fragment itself.
                prefetch_time = texture_time
            if misses:
                start = max(memory_free, prefetch_time)
                memory_free = start + misses * interval
                ready_at[index] = start + (misses - 1) * interval + latency
            else:
                ready_at[index] = 0.0
            begin = max(texture_time, ready_at[index])
            stall += begin - texture_time
            texture_time = begin + consume
            finish[index] = texture_time
        return PrefetchResult(
            n_fragments=len(miss_counts),
            total_cycles=texture_time,
            stall_cycles=stall,
            machine=machine,
        )

    def _run_vectorized(self, miss_counts: np.ndarray,
                        line_size: int) -> PrefetchResult:
        # Same recurrences as the reference walk, resolved per block of
        # `fifo_depth` fragments: inside a block the prefetch gate
        # finish[i - depth] only references earlier blocks, so the
        # memory-channel chain (a running max over gate minus channel
        # occupancy prefix) and the texture chain (a running max over
        # ready-time minus consume offsets) each collapse into one
        # np.maximum.accumulate.  Totals telescope: the per-fragment
        # stall sum equals total minus n * consume exactly.
        machine = self.machine
        latency, interval, consume = self._timing(line_size)
        counts = np.asarray(miss_counts, dtype=np.float64)
        n = len(counts)
        if n == 0:
            return PrefetchResult(0, 0.0, 0.0, machine)
        missing = counts > 0.0
        if self.fifo_depth == 0:
            if latency + consume < interval:
                # Channel backpressure could outlive a fragment; only
                # the sequential walk models that regime.
                return self._run_reference(miss_counts, line_size)
            # Without prefetch every fill waits on the texture stage
            # itself, so each missing fragment exposes its full
            # (misses - 1) * interval + latency fill time.
            waits = np.where(missing, counts * interval - interval + latency, 0.0)
            total = n * consume + float(waits.sum())
            return PrefetchResult(n, total, total - n * consume, machine)

        depth = self.fifo_depth
        width = min(depth, n)
        coff = np.arange(width, dtype=np.float64) * consume
        miss_idx = np.flatnonzero(missing)
        starts = list(range(0, n, width))
        mp = np.searchsorted(miss_idx, starts + [n]).tolist()
        occupancy = counts[miss_idx] * interval
        cum = np.zeros(len(miss_idx) + 1)
        np.cumsum(occupancy, out=cum[1:])
        waits = occupancy - interval + latency
        finish = np.empty(n)
        memory_free = 0.0
        texture_carry = 0.0
        for k, s in enumerate(starts):
            t = min(s + width, n)
            w = t - s
            p0, p1 = mp[k], mp[k + 1]
            floor = np.full(w, -np.inf)
            if p0 < p1:
                cols = miss_idx[p0:p1] - s
                so = cum[p0:p1] - cum[p0]
                if s >= depth:
                    y = finish[s - depth + cols] - so
                else:
                    y = -so
                y[0] = max(y[0], memory_free)
                np.maximum.accumulate(y, out=y)
                start = y + so
                memory_free = float(start[-1] + occupancy[p1 - 1])
                floor[cols] = (start + waits[p0:p1]) - coff[cols]
            floor[0] = max(floor[0], texture_carry)
            np.maximum.accumulate(floor, out=floor)
            np.add(floor, coff[:w], out=floor)
            np.add(floor, consume, out=finish[s:t])
            texture_carry = float(finish[t - 1])
        total = texture_carry
        return PrefetchResult(
            n_fragments=n,
            total_cycles=total,
            stall_cycles=total - n * consume,
            machine=machine,
        )


def sweep_fifo_depths(miss_counts: np.ndarray, line_size: int, depths,
                      machine: MachineModel = PAPER_MACHINE,
                      fill_interval: Optional[float] = None,
                      kernel: str = "vectorized") -> dict:
    """Achieved fragment rate for each FIFO depth."""
    return {
        depth: PrefetchPipeline(machine, fifo_depth=depth,
                                fill_interval=fill_interval,
                                kernel=kernel).run(miss_counts, line_size)
        for depth in depths
    }

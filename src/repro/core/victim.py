"""Victim caching as an alternative to set associativity.

Section 5.3.3 attributes direct-mapped miss-rate inflation to conflicts
(between adjacent Mip Map levels, and between blocks in one 2D array).
The paper's remedy is associativity; a classic alternative from the
same era is Jouppi's *victim cache*: a tiny fully-associative buffer
holding the last few lines evicted from a direct-mapped cache, so
ping-ponging conflict pairs resolve without a memory fetch.

:func:`simulate_victim` measures how many victim-buffer entries a
direct-mapped texture cache needs to match two-way associativity on
real traces -- an ablation beyond the paper's design space.

The default ``kernel="vectorized"`` path rests on an invariant of the
swap protocol: whatever the victim buffer does, the main cache's
resident of a set is always the set's most recently accessed line --
the victim-hit path and the full-miss path both install the accessed
line.  Main-cache outcomes are therefore exactly those of a plain
direct-mapped cache (per-set stack distance 1 = hit), computable by
the batched kernels; only the main-*miss* substream (typically a few
percent of accesses) flows through the sequential victim-buffer LRU,
whose swap bookkeeping has no stack-distance characterization.  The
full sequential loop stays selectable as the ``"reference"`` oracle.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from . import kernels
from .cache import CacheConfig, LineStream


@dataclass
class VictimStats:
    """Outcome of a direct-mapped + victim-buffer simulation."""

    config: CacheConfig
    victim_lines: int
    accesses: int
    misses: int
    victim_hits: int
    cold_misses: int

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that go to memory (victim hits don't)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def victim_hit_rate(self) -> float:
        return self.victim_hits / self.accesses if self.accesses else 0.0


def _displaced_residents(run_lines: np.ndarray, n_sets: int) -> np.ndarray:
    """Per access, the line currently resident in its direct-mapped set
    (= the set's previous access, whatever line it was), or -1 when the
    set is still empty."""
    order = kernels._partition_order(run_lines, n_sets)
    grouped = run_lines[order]
    grouped_set = grouped % n_sets
    part = np.empty(len(run_lines), dtype=np.int64)
    if len(run_lines):
        part[0] = -1
        part[1:] = np.where(grouped_set[1:] == grouped_set[:-1],
                            grouped[:-1], -1)
    residents = np.empty(len(run_lines), dtype=np.int64)
    residents[order] = part
    return residents


def _victim_buffer_walk(miss_lines, residents, cold_mask,
                        victim_lines: int) -> tuple:
    """Sequential LRU victim buffer over the main-miss substream;
    returns (misses, victim_hits, cold).  Identical bookkeeping to the
    reference loop, fed only the accesses that miss the main cache."""
    victim = OrderedDict()
    misses = 0
    victim_hits = 0
    cold = 0
    for line, resident, is_cold in zip(miss_lines.tolist(),
                                       residents.tolist(),
                                       cold_mask.tolist()):
        if line in victim:
            # Swap with the displaced main-cache line.
            del victim[line]
            victim_hits += 1
        else:
            misses += 1
            cold += is_cold
        if resident >= 0:
            victim[resident] = None
            victim.move_to_end(resident)
            if len(victim) > victim_lines:
                victim.popitem(last=False)
    return misses, victim_hits, cold


def simulate_victim(trace, config: CacheConfig, victim_lines: int,
                    kernel: str = "vectorized") -> VictimStats:
    """Simulate a direct-mapped cache backed by a ``victim_lines``-entry
    fully-associative victim buffer.

    On a main-cache miss that hits the victim buffer, the line and the
    displaced main-cache resident swap (no memory traffic); on a full
    miss the fill's victim is pushed into the buffer (LRU).
    ``kernel="vectorized"`` (default) classifies main-cache outcomes
    with the batched per-set kernels and walks only the miss substream
    sequentially; ``"reference"`` walks every access.  Both are exact.
    """
    if config.ways != 1:
        raise ValueError("victim caches back a direct-mapped main cache")
    if victim_lines < 0:
        raise ValueError("victim_lines must be >= 0")
    kernels.check_kernel(kernel)
    if isinstance(trace, LineStream):
        stream = trace
    else:
        stream = LineStream.from_addresses(trace, config.line_size)

    n_sets = config.n_sets
    if kernel == "vectorized":
        run = stream.run_lines
        prev = kernels.previous_occurrences(run)
        main_miss, cold = kernels.run_outcomes(run, config, prev=prev)
        if victim_lines == 0:
            misses = int(np.count_nonzero(main_miss))
            victim_hits = 0
            cold_count = int(np.count_nonzero(cold))
        else:
            residents = _displaced_residents(run, n_sets)
            misses, victim_hits, cold_count = _victim_buffer_walk(
                run[main_miss], residents[main_miss], cold[main_miss],
                victim_lines)
        return VictimStats(
            config=config,
            victim_lines=victim_lines,
            accesses=stream.total_accesses,
            misses=misses,
            victim_hits=victim_hits,
            cold_misses=cold_count,
        )

    mask = n_sets - 1 if (n_sets & (n_sets - 1)) == 0 else None
    main = {}
    victim = OrderedDict()
    seen = set()
    misses = 0
    victim_hits = 0
    cold = 0

    def push_victim(line):
        if victim_lines == 0:
            return
        victim[line] = None
        victim.move_to_end(line)
        if len(victim) > victim_lines:
            victim.popitem(last=False)

    for line in stream.run_lines.tolist():
        index = line & mask if mask is not None else line % n_sets
        resident = main.get(index)
        if resident == line:
            continue
        if line in victim:
            # Swap with the displaced main-cache line.
            del victim[line]
            victim_hits += 1
            if resident is not None:
                push_victim(resident)
            main[index] = line
            continue
        misses += 1
        if line not in seen:
            cold += 1
            seen.add(line)
        if resident is not None:
            push_victim(resident)
        main[index] = line

    return VictimStats(
        config=config,
        victim_lines=victim_lines,
        accesses=stream.total_accesses,
        misses=misses,
        victim_hits=victim_hits,
        cold_misses=cold,
    )

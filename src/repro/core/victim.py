"""Victim caching as an alternative to set associativity.

Section 5.3.3 attributes direct-mapped miss-rate inflation to conflicts
(between adjacent Mip Map levels, and between blocks in one 2D array).
The paper's remedy is associativity; a classic alternative from the
same era is Jouppi's *victim cache*: a tiny fully-associative buffer
holding the last few lines evicted from a direct-mapped cache, so
ping-ponging conflict pairs resolve without a memory fetch.

:func:`simulate_victim` measures how many victim-buffer entries a
direct-mapped texture cache needs to match two-way associativity on
real traces -- an ablation beyond the paper's design space.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .cache import CacheConfig, LineStream


@dataclass
class VictimStats:
    """Outcome of a direct-mapped + victim-buffer simulation."""

    config: CacheConfig
    victim_lines: int
    accesses: int
    misses: int
    victim_hits: int
    cold_misses: int

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that go to memory (victim hits don't)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def victim_hit_rate(self) -> float:
        return self.victim_hits / self.accesses if self.accesses else 0.0


def simulate_victim(trace, config: CacheConfig, victim_lines: int) -> VictimStats:
    """Simulate a direct-mapped cache backed by a ``victim_lines``-entry
    fully-associative victim buffer.

    On a main-cache miss that hits the victim buffer, the line and the
    displaced main-cache resident swap (no memory traffic); on a full
    miss the fill's victim is pushed into the buffer (LRU).
    """
    if config.ways != 1:
        raise ValueError("victim caches back a direct-mapped main cache")
    if victim_lines < 0:
        raise ValueError("victim_lines must be >= 0")
    if isinstance(trace, LineStream):
        stream = trace
    else:
        stream = LineStream.from_addresses(trace, config.line_size)

    n_sets = config.n_sets
    mask = n_sets - 1 if (n_sets & (n_sets - 1)) == 0 else None
    main = {}
    victim = OrderedDict()
    seen = set()
    misses = 0
    victim_hits = 0
    cold = 0

    def push_victim(line):
        if victim_lines == 0:
            return
        victim[line] = None
        victim.move_to_end(line)
        if len(victim) > victim_lines:
            victim.popitem(last=False)

    for line in stream.run_lines.tolist():
        index = line & mask if mask is not None else line % n_sets
        resident = main.get(index)
        if resident == line:
            continue
        if line in victim:
            # Swap with the displaced main-cache line.
            del victim[line]
            victim_hits += 1
            if resident is not None:
                push_victim(resident)
            main[index] = line
            continue
        misses += 1
        if line not in seen:
            cold += 1
            seen.add(line)
        if resident is not None:
            push_victim(resident)
        main[index] = line

    return VictimStats(
        config=config,
        victim_lines=victim_lines,
        accesses=stream.total_accesses,
        misses=misses,
        victim_hits=victim_hits,
        cold_misses=cold,
    )

"""The paper's contribution: the texture cache architecture --
simulator, stack-distance analysis, miss classification, machine model
and bandwidth accounting."""

from .cache import (
    CacheConfig,
    CacheStats,
    LineStream,
    LRUCache,
    collapse_consecutive,
    collapse_segments,
    simulate,
    simulate_sequence,
    to_lines,
)
from .kernels import (
    KERNELS,
    SetDistanceProfile,
    check_kernel,
    line_miss_mask,
    miss_mask,
    miss_stream,
)
from .stackdist import (
    COLD,
    DistanceProfile,
    MissRateCurve,
    miss_rate_curve,
    stack_distances,
)
from .classify import classify_misses
from .machine import PAPER_MACHINE, MachineModel
from .bandwidth import (
    GBYTE,
    MBYTE,
    cached_bandwidth,
    mbytes_per_second,
    reduction_factor,
    uncached_bandwidth,
)
from .banking import (
    BankingStats,
    N_BANKS,
    analyze_banking,
    linear_bank,
    morton_bank,
    quad_is_conflict_free,
)
from .prefetch import (
    PrefetchPipeline,
    PrefetchResult,
    fragment_miss_counts,
    sweep_fifo_depths,
)
from .parallel import (
    ParallelStats,
    ScanlineInterleave,
    StripSplit,
    TileInterleave,
    WorkDistribution,
    simulate_parallel,
    split_trace,
)
from .dram import (
    DramModel,
    DramTiming,
    PAPER_DRAM,
    line_fill_cycles,
    uncached_stream_cycles,
)
from .hierarchy import HierarchyStats, hierarchy_bandwidths, simulate_hierarchy
from .victim import VictimStats, simulate_victim
from .sweep import (
    PAPER_ASSOCIATIVITIES,
    PAPER_CACHE_SIZES,
    PAPER_LINE_SIZES,
    TraceStreams,
    fully_associative_curve,
    sweep_associativities,
    sweep_cache_sizes,
)

__all__ = [
    "CacheConfig",
    "CacheStats",
    "LineStream",
    "LRUCache",
    "collapse_consecutive",
    "collapse_segments",
    "simulate",
    "simulate_sequence",
    "to_lines",
    "KERNELS",
    "SetDistanceProfile",
    "check_kernel",
    "line_miss_mask",
    "miss_mask",
    "miss_stream",
    "COLD",
    "DistanceProfile",
    "MissRateCurve",
    "miss_rate_curve",
    "stack_distances",
    "classify_misses",
    "MachineModel",
    "PAPER_MACHINE",
    "MBYTE",
    "GBYTE",
    "cached_bandwidth",
    "mbytes_per_second",
    "reduction_factor",
    "uncached_bandwidth",
    "TraceStreams",
    "PAPER_CACHE_SIZES",
    "PAPER_LINE_SIZES",
    "PAPER_ASSOCIATIVITIES",
    "fully_associative_curve",
    "sweep_associativities",
    "sweep_cache_sizes",
    "BankingStats",
    "N_BANKS",
    "analyze_banking",
    "morton_bank",
    "linear_bank",
    "quad_is_conflict_free",
    "PrefetchPipeline",
    "PrefetchResult",
    "fragment_miss_counts",
    "sweep_fifo_depths",
    "ParallelStats",
    "WorkDistribution",
    "TileInterleave",
    "ScanlineInterleave",
    "StripSplit",
    "simulate_parallel",
    "split_trace",
    "VictimStats",
    "simulate_victim",
    "DramModel",
    "DramTiming",
    "PAPER_DRAM",
    "line_fill_cycles",
    "uncached_stream_cycles",
    "HierarchyStats",
    "simulate_hierarchy",
    "hierarchy_bandwidths",
]

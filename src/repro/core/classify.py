"""Miss classification: cold / capacity / conflict (the 3C model).

The paper reasons separately about cold misses (Section 5.2.2),
capacity misses (working sets, Sections 5.2.3, 5.3.2, 6.1) and conflict
misses (Sections 5.3.3, 6.2).  We use the standard decomposition:

* **cold** -- first access to a line; unavoidable.
* **capacity** -- non-cold misses that a fully-associative LRU cache of
  the same total size would also incur (stack distance exceeds the line
  count).
* **conflict** -- the remainder: misses of the set-associative cache
  that full associativity would have avoided.
"""

from __future__ import annotations

from .cache import CacheConfig, CacheStats, LineStream, _simulate_runs
from .stackdist import DistanceProfile


def classify_misses(trace, config: CacheConfig, profile: DistanceProfile = None) -> CacheStats:
    """Simulate ``config`` and decompose its misses into the 3C model.

    ``trace`` is a byte-address array or a :class:`LineStream` matching
    the config's line size.  Pass a precomputed ``profile`` (from the
    same stream) to amortize the stack-distance pass across configs.
    """
    if isinstance(trace, LineStream):
        if trace.line_size != config.line_size:
            raise ValueError("LineStream line size mismatch")
        stream = trace
    else:
        stream = LineStream.from_addresses(trace, config.line_size)

    if profile is None:
        profile = DistanceProfile.from_stream(stream)
    fully_associative_misses = profile.misses_at(config.n_lines)

    misses, cold = _simulate_runs(stream.run_lines, config)
    capacity = fully_associative_misses - cold
    conflict = misses - fully_associative_misses
    if conflict < 0:
        # LRU set-associative caches can (rarely) beat fully-associative
        # LRU on pathological streams; fold the difference into capacity
        # so the three categories still sum to the miss count.
        capacity += conflict
        conflict = 0
    return CacheStats(
        config=config,
        accesses=stream.total_accesses,
        misses=misses,
        cold_misses=cold,
        capacity_misses=capacity,
        conflict_misses=conflict,
    )

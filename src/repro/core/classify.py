"""Miss classification: cold / capacity / conflict (the 3C model).

The paper reasons separately about cold misses (Section 5.2.2),
capacity misses (working sets, Sections 5.2.3, 5.3.2, 6.1) and conflict
misses (Sections 5.3.3, 6.2).  We use the standard decomposition:

* **cold** -- first access to a line; unavoidable.
* **capacity** -- non-cold misses that a fully-associative LRU cache of
  the same total size would also incur (stack distance exceeds the line
  count).
* **conflict** -- the remainder: misses of the set-associative cache
  that full associativity would have avoided.

On the default vectorized kernel both numbers come from distance
profiles -- the fully-associative count from a
:class:`~repro.core.stackdist.DistanceProfile`, the set-associative
count from a :class:`~repro.core.kernels.SetDistanceProfile` -- so no
per-access Python loop runs anywhere on the LRU path.
"""

from __future__ import annotations

from . import kernels
from .cache import CacheConfig, CacheStats, LineStream, _simulate_runs
from .stackdist import DistanceProfile


def classify_misses(trace, config: CacheConfig,
                    profile: DistanceProfile = None,
                    set_profile: "kernels.SetDistanceProfile" = None,
                    kernel: str = "vectorized") -> CacheStats:
    """Simulate ``config`` and decompose its misses into the 3C model.

    ``trace`` is a byte-address array or a :class:`LineStream` matching
    the config's line size.  Pass a precomputed ``profile`` (from the
    same stream) to amortize the fully-associative distance pass across
    configs, and -- on the vectorized kernel -- a ``set_profile``
    matching ``(config.line_size, config.n_sets)`` to amortize the
    per-set pass across every associativity sharing it.
    """
    kernels.check_kernel(kernel)
    if isinstance(trace, LineStream):
        if trace.line_size != config.line_size:
            raise ValueError("LineStream line size mismatch")
        stream = trace
    else:
        stream = LineStream.from_addresses(trace, config.line_size)

    if profile is None:
        profile = DistanceProfile.from_stream(stream, kernel=kernel)
    fully_associative_misses = profile.misses_at(config.n_lines)

    if kernel == "vectorized":
        if config.n_sets == 1:
            # The set-associative cache IS the fully-associative one.
            misses, cold = fully_associative_misses, profile.cold
        else:
            if set_profile is None:
                set_profile = kernels.SetDistanceProfile.from_stream(
                    stream, config.n_sets)
            misses, cold = set_profile.stats_pair(config)
    else:
        misses, cold = _simulate_runs(stream.run_lines, config)
    capacity = fully_associative_misses - cold
    conflict = misses - fully_associative_misses
    if conflict < 0:
        # LRU set-associative caches can (rarely) beat fully-associative
        # LRU on pathological streams; fold the difference into capacity
        # so the three categories still sum to the miss count.
        capacity += conflict
        conflict = 0
    return CacheStats(
        config=config,
        accesses=stream.total_accesses,
        misses=misses,
        cold_misses=cold,
        capacity_misses=capacity,
        conflict_misses=conflict,
    )

"""LRU stack-distance analysis (Mattson et al.).

Fully-associative LRU caches obey the inclusion property, so a single
pass computing each access's *stack distance* -- one plus the number of
distinct other lines touched since the previous access to the same line
-- yields the miss count for **every** cache size at once:

    miss(C lines) = #cold accesses + #accesses with distance > C.

This is what makes the paper's miss-rate-versus-cache-size figures
(5.2, 5.4, 5.5, 5.6, 6.2) cheap to regenerate: one pass per trace
instead of one simulation per cache size.

:func:`stack_distances` here is the sequential reference: a Fenwick
(binary indexed) tree over access positions, marking each line's most
recent access -- the classic O(n log n) algorithm, one Python loop
iteration per access.  :class:`DistanceProfile` defaults to the
batched offline kernel in :mod:`repro.core.kernels`, which computes
the same distances with no per-access Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .cache import CacheConfig, CacheStats, LineStream

#: Distance value recorded for cold (first-touch) accesses.
COLD = -1


def stack_distances(run_lines: np.ndarray) -> np.ndarray:
    """Per-access LRU stack distances; :data:`COLD` for first touches.

    ``run_lines`` should already be collapsed with
    :func:`repro.core.cache.collapse_consecutive` for speed (collapsed
    duplicates all have distance 1 and can be re-added analytically).
    """
    n = len(run_lines)
    distances = np.empty(n, dtype=np.int64)
    tree = [0] * (n + 1)
    last_pos = {}
    for index, line in enumerate(run_lines.tolist()):
        pos = index + 1  # Fenwick trees are 1-indexed
        previous = last_pos.get(line)
        if previous is None:
            distances[index] = COLD
        else:
            # Count marked positions in (previous, pos): these are the
            # most-recent accesses of distinct other lines.
            marked = 0
            k = pos - 1
            while k > 0:
                marked += tree[k]
                k -= k & -k
            k = previous
            while k > 0:
                marked -= tree[k]
                k -= k & -k
            distances[index] = marked + 1
            # Unmark the previous access of this line.
            k = previous
            while k <= n:
                tree[k] -= 1
                k += k & -k
        # Mark this access as the line's most recent.
        k = pos
        while k <= n:
            tree[k] += 1
            k += k & -k
        last_pos[line] = pos
    return distances


@dataclass
class DistanceProfile:
    """A trace's stack-distance summary, reusable across cache sizes.

    ``counts[d]`` is the number of accesses with stack distance ``d``
    (``d >= 1``); ``cold`` counts first touches; ``duplicate_hits``
    re-adds the collapsed consecutive repeats (distance 1).
    """

    counts: np.ndarray
    cold: int
    duplicate_hits: int

    @property
    def total_accesses(self) -> int:
        return int(self.counts.sum()) + self.cold + self.duplicate_hits

    @classmethod
    def from_stream(cls, stream: LineStream,
                    kernel: str = "vectorized") -> "DistanceProfile":
        from . import kernels

        kernels.check_kernel(kernel)
        if kernel == "vectorized":
            counts, cold = kernels.set_distance_histogram(stream.run_lines, 1)
            return cls(counts=counts, cold=cold,
                       duplicate_hits=stream.duplicate_hits)
        distances = stack_distances(stream.run_lines)
        cold = int(np.count_nonzero(distances == COLD))
        finite = distances[distances != COLD]
        if len(finite):
            counts = np.bincount(finite)
        else:
            counts = np.zeros(1, dtype=np.int64)
        return cls(counts=counts, cold=cold, duplicate_hits=stream.duplicate_hits)

    def misses_at(self, capacity_lines: int) -> int:
        """Miss count for a fully-associative LRU cache holding
        ``capacity_lines`` lines."""
        if capacity_lines < 1:
            raise ValueError("capacity must be at least one line")
        upto = min(capacity_lines + 1, len(self.counts))
        hits_within = int(self.counts[:upto].sum())
        return int(self.counts.sum()) - hits_within + self.cold

    def miss_rate_at(self, capacity_lines: int) -> float:
        total = self.total_accesses
        return self.misses_at(capacity_lines) / total if total else 0.0

    @property
    def cold_miss_rate(self) -> float:
        total = self.total_accesses
        return self.cold / total if total else 0.0


@dataclass
class MissRateCurve:
    """Fully-associative miss rate as a function of cache size.

    ``miss_counts``/``cold_misses`` carry the exact per-size integer
    miss counts alongside the rates; :func:`miss_rate_curve` always
    fills them in, so :meth:`as_stats` round-trips bit-identically to
    direct simulation.  They default to ``None`` for hand-constructed
    curves, where :meth:`as_stats` falls back to reconstructing counts
    from the rates (accurate only to rounding).
    """

    line_size: int
    sizes: np.ndarray
    miss_rates: np.ndarray
    cold_miss_rate: float
    total_accesses: int
    miss_counts: Optional[np.ndarray] = None
    cold_misses: Optional[int] = None

    def as_stats(self) -> list:
        """Expand the curve into per-size :class:`CacheStats`."""
        if self.miss_counts is not None:
            misses_per_size = [int(m) for m in self.miss_counts]
        else:
            misses_per_size = [round(rate * self.total_accesses)
                               for rate in self.miss_rates.tolist()]
        if self.cold_misses is not None:
            cold = int(self.cold_misses)
        else:
            cold = round(self.cold_miss_rate * self.total_accesses)
        stats = []
        for size, misses in zip(self.sizes.tolist(), misses_per_size):
            config = CacheConfig(size=int(size), line_size=self.line_size, assoc=None)
            stats.append(CacheStats(
                config=config,
                accesses=self.total_accesses,
                misses=misses,
                cold_misses=cold,
            ))
        return stats


def miss_rate_curve(trace, line_size: int, cache_sizes) -> MissRateCurve:
    """Fully-associative LRU miss rates for every size in
    ``cache_sizes`` (bytes), from a single stack-distance pass.

    ``trace`` is a byte-address array, a :class:`LineStream`, or any
    object with ``stream(line_size)``/``profile(line_size)`` memoizers
    (:class:`~repro.core.sweep.TraceStreams`), in which case the
    memoized -- possibly store-backed -- profile is reused instead of
    recomputed.
    """
    if hasattr(trace, "profile") and hasattr(trace, "stream"):
        profile = trace.profile(line_size)
    else:
        if isinstance(trace, LineStream):
            if trace.line_size != line_size:
                raise ValueError("LineStream line size mismatch")
            stream = trace
        else:
            stream = LineStream.from_addresses(trace, line_size)
        profile = DistanceProfile.from_stream(stream)
    sizes = np.asarray(sorted(cache_sizes), dtype=np.int64)
    total = profile.total_accesses
    misses = np.array([
        profile.misses_at(max(int(size) // line_size, 1)) for size in sizes
    ], dtype=np.int64)
    rates = misses / total if total else np.zeros(len(sizes))
    return MissRateCurve(
        line_size=line_size,
        sizes=sizes,
        miss_rates=rates,
        cold_miss_rate=profile.cold_miss_rate,
        total_accesses=total,
        miss_counts=misses,
        cold_misses=profile.cold,
    )

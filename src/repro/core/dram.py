"""DRAM timing model (paper Section 3.2's motivation).

"Present-day DRAM architectures are optimized for long burst transfers
to microprocessor caches since this amortizes the setup costs of the
transfer over many bytes and leads to the most efficient memory bus
utilization."  The paper's second argument for texture caches is thus
independent of hit rates: even for the *same* bytes, fetching whole
cache lines uses the DRAM far better than the uncached system's
texel-sized random accesses.

:class:`DramModel` is a page-mode DRAM with banks and open row
buffers: an access to an open row costs ``col_cycles`` per burst beat;
a row change adds ``row_cycles``.  :func:`access_time` walks an access
stream (address, burst length) and returns total cycles, from which
effective bandwidth and bus utilization follow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..texture.image import is_power_of_two, log2_int


@dataclass(frozen=True)
class DramModel:
    """A banked page-mode DRAM.

    Defaults model a mid-90s SDRAM part: 2 KB rows, 4 banks, 8 bytes
    per column beat, 2 cycles per beat when the row is open, 8 extra
    cycles to precharge + activate on a row change.
    """

    row_nbytes: int = 2048
    n_banks: int = 4
    beat_nbytes: int = 8
    col_cycles: int = 2
    row_cycles: int = 8

    def __post_init__(self) -> None:
        for field_name in ("row_nbytes", "n_banks", "beat_nbytes"):
            if not is_power_of_two(getattr(self, field_name)):
                raise ValueError(f"{field_name} must be a power of two")

    @property
    def peak_bytes_per_cycle(self) -> float:
        """Bus limit with rows always open."""
        return self.beat_nbytes / self.col_cycles

    def bank_and_row(self, addresses: np.ndarray) -> tuple:
        """Bank index and row number per address (row-interleaved)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        row_shift = log2_int(self.row_nbytes)
        global_row = addresses >> row_shift
        bank = global_row & (self.n_banks - 1)
        row = global_row >> log2_int(self.n_banks)
        return bank, row

    def access_cycles(self, addresses: np.ndarray, burst_nbytes: int) -> float:
        """Cycles to serve bursts of ``burst_nbytes`` at ``addresses``.

        Open-row tracking per bank; beats within a burst always hit the
        open row (bursts never straddle rows for power-of-two line
        sizes within a row).
        """
        if burst_nbytes < 1:
            raise ValueError("burst must transfer at least one byte")
        beats = max(-(-burst_nbytes // self.beat_nbytes), 1)
        bank, row = self.bank_and_row(addresses)
        open_rows = np.full(self.n_banks, -1, dtype=np.int64)
        cycles = 0
        for b, r in zip(bank.tolist(), row.tolist()):
            if open_rows[b] != r:
                cycles += self.row_cycles
                open_rows[b] = r
            cycles += beats * self.col_cycles
        return float(cycles)

    def effective_bandwidth(self, addresses: np.ndarray, burst_nbytes: int,
                            clock_hz: float = 100e6) -> float:
        """Bytes/second actually delivered for the access stream."""
        if len(addresses) == 0:
            return 0.0
        cycles = self.access_cycles(addresses, burst_nbytes)
        total_bytes = len(addresses) * burst_nbytes
        return total_bytes / cycles * clock_hz

    def bus_utilization(self, addresses: np.ndarray, burst_nbytes: int) -> float:
        """Delivered bytes over the zero-overhead bus capacity."""
        if len(addresses) == 0:
            return 1.0
        cycles = self.access_cycles(addresses, burst_nbytes)
        ideal = len(addresses) * burst_nbytes / self.peak_bytes_per_cycle
        return ideal / cycles


#: A reference part for the Section 3.2 comparison.
PAPER_DRAM = DramModel()


def uncached_stream_cycles(addresses: np.ndarray, texel_nbytes: int = 4,
                           dram: DramModel = PAPER_DRAM) -> float:
    """Cycles for the cacheless system: one texel-sized access per
    texel fetch (what a dedicated texture DRAM must serve)."""
    return dram.access_cycles(addresses, texel_nbytes)


def line_fill_cycles(miss_addresses: np.ndarray, line_size: int,
                     dram: DramModel = PAPER_DRAM) -> float:
    """Cycles for a cached system's miss stream of whole-line bursts."""
    return dram.access_cycles(miss_addresses, line_size)

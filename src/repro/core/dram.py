"""DRAM timing model (paper Section 3.2's motivation).

"Present-day DRAM architectures are optimized for long burst transfers
to microprocessor caches since this amortizes the setup costs of the
transfer over many bytes and leads to the most efficient memory bus
utilization."  The paper's second argument for texture caches is thus
independent of hit rates: even for the *same* bytes, fetching whole
cache lines uses the DRAM far better than the uncached system's
texel-sized random accesses.

:class:`DramModel` is a page-mode DRAM with banks and open row
buffers: an access to an open row costs ``col_cycles`` per burst beat;
a row change adds ``row_cycles``.  :func:`access_time` walks an access
stream (address, burst length) and returns total cycles, from which
effective bandwidth and bus utilization follow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..texture.image import is_power_of_two, log2_int
from .kernels import _argsort_bounded, check_kernel


@dataclass(frozen=True)
class DramTiming:
    """Timing outcome of one access stream through a :class:`DramModel`.

    Computed once by :meth:`DramModel.timing`; bandwidth and
    utilization derive from the same ``cycles`` figure, so consumers
    needing several metrics for one stream pay for the cycle walk once.
    """

    n_accesses: int
    burst_nbytes: int
    cycles: float
    peak_bytes_per_cycle: float

    @property
    def total_bytes(self) -> int:
        return self.n_accesses * self.burst_nbytes

    def effective_bandwidth(self, clock_hz: float = 100e6) -> float:
        """Bytes/second actually delivered for the access stream."""
        if self.n_accesses == 0:
            return 0.0
        return self.total_bytes / self.cycles * clock_hz

    @property
    def bus_utilization(self) -> float:
        """Delivered bytes over the zero-overhead bus capacity."""
        if self.n_accesses == 0:
            return 1.0
        return (self.total_bytes / self.peak_bytes_per_cycle) / self.cycles


@dataclass(frozen=True)
class DramModel:
    """A banked page-mode DRAM.

    Defaults model a mid-90s SDRAM part: 2 KB rows, 4 banks, 8 bytes
    per column beat, 2 cycles per beat when the row is open, 8 extra
    cycles to precharge + activate on a row change.
    """

    row_nbytes: int = 2048
    n_banks: int = 4
    beat_nbytes: int = 8
    col_cycles: int = 2
    row_cycles: int = 8

    def __post_init__(self) -> None:
        for field_name in ("row_nbytes", "n_banks", "beat_nbytes"):
            if not is_power_of_two(getattr(self, field_name)):
                raise ValueError(f"{field_name} must be a power of two")

    @property
    def peak_bytes_per_cycle(self) -> float:
        """Bus limit with rows always open."""
        return self.beat_nbytes / self.col_cycles

    def bank_and_row(self, addresses: np.ndarray) -> tuple:
        """Bank index and row number per address (row-interleaved)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        row_shift = log2_int(self.row_nbytes)
        global_row = addresses >> row_shift
        bank = global_row & (self.n_banks - 1)
        row = global_row >> log2_int(self.n_banks)
        return bank, row

    def access_cycles(self, addresses: np.ndarray, burst_nbytes: int,
                      kernel: str = "vectorized") -> float:
        """Cycles to serve bursts of ``burst_nbytes`` at ``addresses``.

        Open-row tracking per bank; beats within a burst always hit the
        open row (bursts never straddle rows for power-of-two line
        sizes within a row).

        Banks are independent row buffers, so total cycles decompose as
        ``n * beats * col_cycles`` plus ``row_cycles`` per row *switch*,
        and a switch happens exactly where an access's row differs from
        the previous access *of the same bank* (or is the bank's
        first).  The default ``"vectorized"`` kernel counts switches
        with one stable argsort by bank and a diff over the grouped
        rows; ``"reference"`` keeps the sequential open-row walk.
        """
        if burst_nbytes < 1:
            raise ValueError("burst must transfer at least one byte")
        check_kernel(kernel)
        beats = max(-(-burst_nbytes // self.beat_nbytes), 1)
        bank, row = self.bank_and_row(addresses)
        if kernel == "vectorized":
            n = len(bank)
            if n == 0:
                return 0.0
            order = _argsort_bounded(bank, self.n_banks)
            grouped_bank = bank[order]
            grouped_row = row[order]
            switch = np.empty(n, dtype=bool)
            switch[0] = True
            np.not_equal(grouped_row[1:], grouped_row[:-1], out=switch[1:])
            switch[1:] |= grouped_bank[1:] != grouped_bank[:-1]
            return float(n * beats * self.col_cycles
                         + int(np.count_nonzero(switch)) * self.row_cycles)
        open_rows = np.full(self.n_banks, -1, dtype=np.int64)
        cycles = 0
        for b, r in zip(bank.tolist(), row.tolist()):
            if open_rows[b] != r:
                cycles += self.row_cycles
                open_rows[b] = r
            cycles += beats * self.col_cycles
        return float(cycles)

    def timing(self, addresses: np.ndarray, burst_nbytes: int,
               kernel: str = "vectorized") -> DramTiming:
        """One cycle walk, every derived metric: the returned
        :class:`DramTiming` answers cycles, effective bandwidth and bus
        utilization without re-walking the stream."""
        return DramTiming(
            n_accesses=len(addresses),
            burst_nbytes=burst_nbytes,
            cycles=self.access_cycles(addresses, burst_nbytes, kernel=kernel),
            peak_bytes_per_cycle=self.peak_bytes_per_cycle,
        )

    def effective_bandwidth(self, addresses: np.ndarray, burst_nbytes: int,
                            clock_hz: float = 100e6) -> float:
        """Bytes/second actually delivered for the access stream.
        (Convenience; prefer :meth:`timing` when several metrics of one
        stream are needed.)"""
        return self.timing(addresses, burst_nbytes).effective_bandwidth(clock_hz)

    def bus_utilization(self, addresses: np.ndarray, burst_nbytes: int) -> float:
        """Delivered bytes over the zero-overhead bus capacity.
        (Convenience; prefer :meth:`timing` when several metrics of one
        stream are needed.)"""
        return self.timing(addresses, burst_nbytes).bus_utilization


#: A reference part for the Section 3.2 comparison.
PAPER_DRAM = DramModel()


def uncached_stream_cycles(addresses: np.ndarray, texel_nbytes: int = 4,
                           dram: DramModel = PAPER_DRAM) -> float:
    """Cycles for the cacheless system: one texel-sized access per
    texel fetch (what a dedicated texture DRAM must serve)."""
    return dram.access_cycles(addresses, texel_nbytes)


def line_fill_cycles(miss_addresses: np.ndarray, line_size: int,
                     dram: DramModel = PAPER_DRAM) -> float:
    """Cycles for a cached system's miss stream of whole-line bursts."""
    return dram.access_cycles(miss_addresses, line_size)

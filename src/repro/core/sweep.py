"""Parameter-sweep helpers for cache studies.

The paper's figures sweep one axis at a time (cache size, line size,
block size, associativity, tile size) while holding the rest fixed.
These helpers run such grids efficiently: one collapsed
:class:`LineStream` per line size, one stack-distance profile per
stream, one per-set :class:`~repro.core.kernels.SetDistanceProfile`
per ``(line_size, n_sets)`` -- each shared across every configuration
that can reuse it, so a whole associativity sweep costs one kernel
pass per distinct set count instead of one simulation per cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import kernels
from .cache import CacheConfig, LineStream, simulate
from .classify import classify_misses
from .kernels import SetDistanceProfile
from .stackdist import DistanceProfile, MissRateCurve, miss_rate_curve

#: The cache-size grid (bytes) used throughout the paper's figures.
PAPER_CACHE_SIZES = tuple(1024 * k for k in (1, 2, 4, 8, 16, 32, 64, 128, 256))

#: Line sizes studied in Figures 5.4/5.5 and Table 7.1.
PAPER_LINE_SIZES = (16, 32, 64, 128, 256)

#: Associativities studied in Figure 5.7 (None = fully associative).
PAPER_ASSOCIATIVITIES = (1, 2, 4, 8, 16, None)


@dataclass
class TraceStreams:
    """Per-line-size collapsed streams, distance profiles and per-set
    profiles for one byte-address trace, built lazily and memoized.

    ``kernel`` selects how profiles are computed; the per-stream
    previous-occurrence index is shared by the fully-associative
    profile and every per-set profile of the same line size, so an
    associativity grid pays for it once.
    """

    addresses: np.ndarray
    kernel: str = "vectorized"

    def __post_init__(self) -> None:
        kernels.check_kernel(self.kernel)
        self._streams = {}
        self._profiles = {}
        self._set_profiles = {}
        self._previous = {}

    def stream(self, line_size: int) -> LineStream:
        if line_size not in self._streams:
            self._streams[line_size] = LineStream.from_addresses(self.addresses, line_size)
        return self._streams[line_size]

    def previous(self, line_size: int) -> np.ndarray:
        """Previous-occurrence indices of the collapsed stream, shared
        by every profile pass at this line size."""
        if line_size not in self._previous:
            self._previous[line_size] = kernels.previous_occurrences(
                self.stream(line_size).run_lines)
        return self._previous[line_size]

    def profile(self, line_size: int) -> DistanceProfile:
        if line_size not in self._profiles:
            stream = self.stream(line_size)
            if self.kernel == "vectorized":
                counts, cold = kernels.set_distance_histogram(
                    stream.run_lines, 1, prev=self.previous(line_size))
                built = DistanceProfile(counts=counts, cold=cold,
                                        duplicate_hits=stream.duplicate_hits)
            else:
                built = DistanceProfile.from_stream(stream, kernel=self.kernel)
            self._profiles[line_size] = built
        return self._profiles[line_size]

    def set_profile(self, line_size: int, n_sets: int) -> SetDistanceProfile:
        """The per-set distance profile for ``(line_size, n_sets)``,
        serving every associativity that shares it."""
        key = (line_size, n_sets)
        if key not in self._set_profiles:
            if n_sets == 1:
                # One set = fully associative: reuse the distance
                # profile rather than running a second identical pass.
                profile = self.profile(line_size)
                built = SetDistanceProfile(
                    line_size=line_size, n_sets=1, counts=profile.counts,
                    cold=profile.cold, duplicate_hits=profile.duplicate_hits)
            else:
                built = SetDistanceProfile.from_stream(
                    self.stream(line_size), n_sets,
                    prev=self.previous(line_size))
            self._set_profiles[key] = built
        return self._set_profiles[key]


def _as_streams(trace, kernel: str) -> TraceStreams:
    if isinstance(trace, TraceStreams):
        return trace
    return TraceStreams(np.asarray(trace), kernel=kernel)


def sweep_cache_sizes(
    trace, line_size: int, cache_sizes=PAPER_CACHE_SIZES, assoc=None,
    kernel: str = "vectorized",
) -> list:
    """Miss stats across ``cache_sizes`` at fixed line size and
    associativity.

    Fully-associative sweeps use one stack-distance pass; finite
    associativities read each size off its per-set profile
    (``kernel="reference"`` simulates each size sequentially instead).
    Returns a list of :class:`CacheStats`.
    """
    kernels.check_kernel(kernel)
    streams = _as_streams(trace, kernel)
    stream = streams.stream(line_size)
    if assoc is None:
        curve = miss_rate_curve(streams, line_size, cache_sizes)
        return curve.as_stats()
    stats = []
    for size in sorted(cache_sizes):
        config = CacheConfig(size=int(size), line_size=line_size, assoc=assoc)
        if kernel == "vectorized":
            stats.append(
                streams.set_profile(line_size, config.n_sets).stats_for(config))
        else:
            stats.append(simulate(stream, config, kernel=kernel))
    return stats


def sweep_associativities(
    trace, size: int, line_size: int, associativities=PAPER_ASSOCIATIVITIES,
    classify: bool = False, kernel: str = "vectorized",
) -> list:
    """Miss stats across associativities at fixed size and line size.

    With the vectorized kernel every associativity sharing a set count
    reads off one :class:`SetDistanceProfile` pass, and ``classify``
    adds the 3C decomposition from the same profiles.
    """
    kernels.check_kernel(kernel)
    streams = _as_streams(trace, kernel)
    stream = streams.stream(line_size)
    stats = []
    for assoc in associativities:
        config = CacheConfig(size=size, line_size=line_size, assoc=assoc)
        if kernel == "vectorized":
            set_profile = streams.set_profile(line_size, config.n_sets)
            if classify:
                stats.append(classify_misses(
                    stream, config, profile=streams.profile(line_size),
                    set_profile=set_profile, kernel=kernel))
            else:
                stats.append(set_profile.stats_for(config))
        elif classify:
            stats.append(classify_misses(
                stream, config, profile=streams.profile(line_size),
                kernel=kernel))
        else:
            stats.append(simulate(stream, config, kernel=kernel))
    return stats


def fully_associative_curve(
    trace, line_size: int, cache_sizes=PAPER_CACHE_SIZES,
    kernel: str = "vectorized",
) -> MissRateCurve:
    """The miss-rate-versus-size curve for a fully-associative cache."""
    return miss_rate_curve(_as_streams(trace, kernel), line_size, cache_sizes)

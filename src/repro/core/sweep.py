"""Parameter-sweep helpers for cache studies.

The paper's figures sweep one axis at a time (cache size, line size,
block size, associativity, tile size) while holding the rest fixed.
These helpers run such grids efficiently: one collapsed
:class:`LineStream` per line size, one stack-distance profile per
stream, shared across all configurations that can reuse them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cache import CacheConfig, LineStream, simulate
from .classify import classify_misses
from .stackdist import DistanceProfile, MissRateCurve, miss_rate_curve

#: The cache-size grid (bytes) used throughout the paper's figures.
PAPER_CACHE_SIZES = tuple(1024 * k for k in (1, 2, 4, 8, 16, 32, 64, 128, 256))

#: Line sizes studied in Figures 5.4/5.5 and Table 7.1.
PAPER_LINE_SIZES = (16, 32, 64, 128, 256)

#: Associativities studied in Figure 5.7 (None = fully associative).
PAPER_ASSOCIATIVITIES = (1, 2, 4, 8, 16, None)


@dataclass
class TraceStreams:
    """Per-line-size collapsed streams and distance profiles for one
    byte-address trace, built lazily and memoized."""

    addresses: np.ndarray

    def __post_init__(self) -> None:
        self._streams = {}
        self._profiles = {}

    def stream(self, line_size: int) -> LineStream:
        if line_size not in self._streams:
            self._streams[line_size] = LineStream.from_addresses(self.addresses, line_size)
        return self._streams[line_size]

    def profile(self, line_size: int) -> DistanceProfile:
        if line_size not in self._profiles:
            self._profiles[line_size] = DistanceProfile.from_stream(self.stream(line_size))
        return self._profiles[line_size]


def sweep_cache_sizes(
    trace, line_size: int, cache_sizes=PAPER_CACHE_SIZES, assoc=None
) -> list:
    """Miss stats across ``cache_sizes`` at fixed line size and
    associativity.

    Fully-associative sweeps use one stack-distance pass; finite
    associativities simulate each size (sharing the collapsed stream).
    Returns a list of :class:`CacheStats`.
    """
    streams = trace if isinstance(trace, TraceStreams) else TraceStreams(np.asarray(trace))
    stream = streams.stream(line_size)
    if assoc is None:
        curve = miss_rate_curve(streams, line_size, cache_sizes)
        return curve.as_stats()
    stats = []
    for size in sorted(cache_sizes):
        config = CacheConfig(size=int(size), line_size=line_size, assoc=assoc)
        stats.append(simulate(stream, config))
    return stats


def sweep_associativities(
    trace, size: int, line_size: int, associativities=PAPER_ASSOCIATIVITIES,
    classify: bool = False,
) -> list:
    """Miss stats across associativities at fixed size and line size."""
    streams = trace if isinstance(trace, TraceStreams) else TraceStreams(np.asarray(trace))
    stream = streams.stream(line_size)
    stats = []
    for assoc in associativities:
        config = CacheConfig(size=size, line_size=line_size, assoc=assoc)
        if classify:
            stats.append(classify_misses(stream, config, profile=streams.profile(line_size)))
        else:
            stats.append(simulate(stream, config))
    return stats


def fully_associative_curve(
    trace, line_size: int, cache_sizes=PAPER_CACHE_SIZES
) -> MissRateCurve:
    """The miss-rate-versus-size curve for a fully-associative cache."""
    streams = trace if isinstance(trace, TraceStreams) else TraceStreams(np.asarray(trace))
    return miss_rate_curve(streams, line_size, cache_sizes)

"""Vectorized cache-simulation kernels.

The paper's studies are whole grids of cache configurations (size x
line size x associativity) over multi-million-access traces, and the
reference simulator (:class:`~repro.core.cache.LRUCache` and the
``_simulate_runs`` loop) pays a Python-level iteration per access per
configuration.  This module provides exact, batched replacements built
on two observations:

**Per-set decomposition.**  A set-associative LRU cache is ``n_sets``
*independent* fully-associative LRU caches, each seeing the
subsequence of line addresses that map to its set.  Partitioning the
collapsed run stream by set index (one stable argsort) and computing
LRU stack distances over the partitioned stream therefore yields --
in one pass -- the exact miss count for **every** associativity that
shares that ``(line_size, n_sets)`` pair:

    misses(ways) = cold + #{accesses with per-set distance > ways}.

**Offline stack distances.**  The per-access stack distance itself is
a 2-D dominance count.  With ``prev(i)`` the position of the previous
access to the same line (-1 for first touches),

    distance(i) = 1 + #{j in (prev(i), i) : prev(j) <= prev(i)}
                = F(i) - prev(i),   F(i) = #{j < i : prev(j) <= prev(i)},

because every j <= prev(i) satisfies ``prev(j) < j <= prev(i)``
trivially.  ``F`` is computed offline by top-down merge counting from
ONE stable argsort: each block of positions, kept sorted by ``prev``
value, is stably split into its two halves level by level, and the
number of left-half elements preceding each right-half element in the
merged order is exactly its dominance contribution -- cumsum and index
arithmetic only, no per-element Python anywhere (see
:func:`dominance_counts`).

The same ``F - prev`` identity survives concatenating the per-set
subsequences: every position in an earlier set's block trivially
satisfies the dominance condition, and each line address maps to
exactly one set, so one global pass computes all per-set distances.

The kernels are exact (bit-identical miss / cold / capacity / conflict
counts versus the reference); :mod:`repro.core.cache` keeps the
sequential implementation selectable via ``kernel="reference"`` and
for the FIFO/random replacement policies, which have no stack-distance
characterization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cache import CacheConfig, CacheStats, LineStream, collapse_consecutive, to_lines

#: Distance value recorded for cold (first-touch) accesses; mirrors
#: :data:`repro.core.stackdist.COLD`.
COLD = -1

#: Kernel selector values accepted throughout the simulator.
KERNELS = ("reference", "vectorized")


def check_kernel(kernel: str) -> str:
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    return kernel


def _argsort_bounded(keys: np.ndarray, upper: int) -> np.ndarray:
    """Stable argsort of non-negative ``keys`` known to be ``< upper``.

    NumPy's stable sort is a (fast) radix sort only for <= 16-bit
    integer dtypes, so narrow keys sort directly and wider bounded
    keys sort as two chained 16-bit radix passes (low then high half),
    several times faster than the int64 mergesort either way.
    """
    if upper <= 1 << 16:
        return np.argsort(keys.astype(np.uint16), kind="stable")
    if upper <= 1 << 32:
        lo = (keys & 0xFFFF).astype(np.uint16)
        first = np.argsort(lo, kind="stable")
        hi = (keys >> 16).astype(np.uint16)
        second = np.argsort(hi[first], kind="stable")
        return first[second]
    return np.argsort(keys, kind="stable")


def previous_occurrences(lines: np.ndarray) -> np.ndarray:
    """``prev[i]`` = index of the previous access to ``lines[i]``, or
    -1 for a first touch.  One stable argsort; no Python loop."""
    lines = np.asarray(lines, dtype=np.int64)
    n = len(lines)
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    order = _argsort_bounded(lines, int(lines.max()) + 1)
    ordered = lines[order]
    same = ordered[1:] == ordered[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


#: Pairs closer than this many position bits are resolved by one
#: batched all-pairs comparison instead of per-level partitioning.
#: Wider blocks win single-threaded (fewer partition levels) but the
#: ``n * 2**bits`` bytes of boolean temporaries lose under concurrent
#: folds on bandwidth-bound hosts, so the width stays at 32.
_BOTTOM_BITS = 5
_POS_MASK = (1 << 32) - 1


def dominance_counts(prev: np.ndarray) -> np.ndarray:
    """``F[i] = #{j < i : prev[j] <= prev[i]}`` for every position.

    Top-down merge counting driven by ONE stable argsort.  Start from
    the fully value-sorted permutation and, level by level, stably
    split each block of ``2**(t+1)`` positions into its two
    ``2**t``-position halves (pure cumsum arithmetic -- no further
    sorting).  Before each split, the block *is* the stable merge of
    its halves, so for every right-half element the number of
    left-half elements preceding it in the block equals
    ``#{left j : prev[j] <= prev[i]}`` exactly (left positions all
    precede right positions, so stability breaks value ties the right
    way).  Each (j, i) pair is counted at exactly one level -- the
    highest differing bit of j and i.

    Constant-factor engineering: positions are a permutation of
    ``[0, n)``, so every block is a fixed ``2**(t+1)``-wide position
    range and block starts/offsets are index arithmetic (no bincount,
    no gathers); each element packs ``accumulated_count << 32 |
    position`` into one int64 so the per-level count update is
    branch-free arithmetic and the only random memory access per level
    is the partition scatter itself; the last ``_BOTTOM_BITS`` levels
    (pairs within 32-position blocks, by then contiguous and
    value-sorted) collapse into a single batched 32x32 triangular
    comparison.  Requires ``n < 2**31``.
    """
    prev = np.asarray(prev, dtype=np.int64)
    n = len(prev)
    counts = np.zeros(n, dtype=np.int64)
    if n < 2:
        return counts
    if n >= 1 << 31:
        raise ValueError("dominance_counts supports up to 2**31-1 accesses")
    # P packs (accumulated count << 32) | position, value-sorted.
    P = _argsort_bounded(prev + 1, n + 1).astype(np.int64, copy=False)
    ks = np.arange(n, dtype=np.int64)
    buffer = np.empty_like(P)
    bottom = 1 << _BOTTOM_BITS
    level = (n - 1).bit_length() - 1
    while level >= _BOTTOM_BITS:
        half = 1 << level
        width = half << 1
        bit = (P >> level) & 1          # 1 = right half of its block
        # Stable rank among left-half elements, rebased per block: one
        # cumsum, everything else index arithmetic.
        left_rank = ks - np.cumsum(bit) + bit
        left_rank -= np.repeat(left_rank[::width], width)[:n]
        P += (bit * left_rank) << 32    # lefts dominating each right
        # Lefts keep their rank at the block start; rights go after the
        # block's ``half`` lefts.  (A block too short to hold ``half``
        # lefts holds no rights at all, so the scalar is always right.)
        slot = (ks & -width) + left_rank
        right_slot = ks + half
        right_slot -= left_rank
        slot += (right_slot - slot) * bit
        buffer[slot] = P
        P, buffer = buffer, P
        level -= 1
    # Bottom levels in one shot: every remaining pair lives inside a
    # 32-position block, contiguous and value-sorted, so stable array
    # order encodes ``prev[j] <= prev[i]`` and a strict position
    # comparison over the lower triangle counts exactly the pairs not
    # yet counted above.  Padding positions sort after every real one.
    padded = -(-n // bottom) * bottom
    if padded != n:
        P = np.concatenate([P, np.arange(n, padded, dtype=np.int64)])
    pos = (P & _POS_MASK).astype(np.int32).reshape(-1, bottom)
    within = (pos[:, None, :] < pos[:, :, None])
    within &= np.tri(bottom, k=-1, dtype=bool)
    within = within.sum(axis=2, dtype=np.int64).ravel()[:n]
    counts[P[:n] & _POS_MASK] = (P[:n] >> 32) + within
    return counts


def stack_distances(run_lines: np.ndarray) -> np.ndarray:
    """Vectorized per-access LRU stack distances (:data:`COLD` for
    first touches); exact drop-in for the Fenwick reference
    :func:`repro.core.stackdist.stack_distances`."""
    run_lines = np.asarray(run_lines, dtype=np.int64)
    prev = previous_occurrences(run_lines)
    counts = dominance_counts(prev)
    return np.where(prev < 0, np.int64(COLD), counts - prev)


def set_partition(run_lines: np.ndarray, n_sets: int) -> np.ndarray:
    """The run stream reordered into per-set subsequences (stable, so
    each subsequence preserves access order).  ``n_sets == 1`` returns
    the stream unchanged."""
    run_lines = np.asarray(run_lines, dtype=np.int64)
    if n_sets <= 1:
        return run_lines
    # Line addresses are non-negative, so % matches the reference
    # cache's mask/modulo set indexing exactly.
    order = _argsort_bounded(run_lines % n_sets, n_sets)
    return run_lines[order]


def _partition_order(run_lines: np.ndarray, n_sets: int) -> np.ndarray:
    """Stable permutation grouping the stream into per-set blocks."""
    return _argsort_bounded(run_lines % n_sets, n_sets)


def _partitioned_prev(run_lines: np.ndarray, n_sets: int,
                      prev: np.ndarray,
                      order: np.ndarray = None) -> np.ndarray:
    """Previous-occurrence indices of the set-partitioned stream,
    derived from the unpartitioned ``prev`` without a second argsort
    over line addresses.

    A line's occurrences all map to one set and the stable partition
    preserves their relative order, so the partitioned stream's
    previous occurrence IS the unpartitioned one relocated:
    ``prev_part[k] = rank[prev[order[k]]]``.
    """
    if order is None:
        order = _partition_order(run_lines, n_sets)
    rank = np.empty(len(order), dtype=np.int64)
    rank[order] = np.arange(len(order), dtype=np.int64)
    moved = prev[order]
    warm = moved >= 0
    out = np.full(len(order), -1, dtype=np.int64)
    out[warm] = rank[moved[warm]]
    return out


def set_distance_histogram(run_lines: np.ndarray, n_sets: int,
                           prev: np.ndarray = None) -> tuple:
    """``(counts, cold)`` for the per-set stack distances of a
    collapsed run stream: ``counts[d]`` is the number of accesses at
    per-set distance ``d`` (aggregated over sets), ``cold`` the number
    of first touches.  Lines never span sets, so one concatenated pass
    computes every set's distances at once.

    MRU short-circuit: an access whose set-partitioned predecessor is
    the same line sits at the top of its set's LRU stack -- per-set
    distance exactly 1 -- and re-touching the MRU line leaves the
    stack untouched, so collapsing those runs *before* the dominance
    count changes no other access's distance.  Texture streams are
    dominated by such immediate re-references once a set's worth of
    interleaving is removed (85-99% of the partitioned stream on the
    paper scenes), so the n-log-n dominance core runs over a small
    residue instead of the full stream.

    ``prev`` optionally supplies :func:`previous_occurrences` of the
    *unpartitioned* stream so grid sweeps (many ``n_sets``, one
    stream) pay for that argsort once.
    """
    run_lines = np.asarray(run_lines, dtype=np.int64)
    if n_sets <= 1:
        if prev is None:
            prev = previous_occurrences(run_lines)
        seq_prev = prev
        mru_hits = 0
    else:
        partitioned = run_lines[_partition_order(run_lines, n_sets)]
        reduced, mru_hits = collapse_consecutive(partitioned)
        seq_prev = previous_occurrences(reduced)
    warm = seq_prev >= 0
    distances = dominance_counts(seq_prev)[warm] - seq_prev[warm]
    if len(distances) or mru_hits:
        # The residue never holds adjacent equal lines, so its warm
        # distances are all >= 2 and folding the collapsed distance-1
        # hits back in reproduces the unreduced histogram exactly.
        counts = np.bincount(distances, minlength=2)
        counts[1] += mru_hits
    else:
        counts = np.zeros(1, dtype=np.int64)
    cold = len(run_lines) - int(warm.sum()) - int(mru_hits)
    return counts.astype(np.int64, copy=False), cold


def per_set_distances(run_lines: np.ndarray, n_sets: int,
                      prev: np.ndarray = None) -> tuple:
    """``(distances, cold)`` per access of a collapsed run stream, in
    stream order: ``distances[i]`` is the access's LRU stack distance
    *within its set* and ``cold[i]`` marks first touches (where the
    distance value is meaningless).

    Unlike :func:`set_distance_histogram` this keeps the per-access
    verdicts instead of aggregating, which is what the hierarchy,
    victim and prefetch simulators need.  ``prev`` optionally supplies
    :func:`previous_occurrences` of the unpartitioned stream so callers
    sharing one stream pay for that argsort once.
    """
    run_lines = np.asarray(run_lines, dtype=np.int64)
    if prev is None:
        prev = previous_occurrences(run_lines)
    cold = prev < 0
    if n_sets <= 1:
        return dominance_counts(prev) - prev, cold
    order = _partition_order(run_lines, n_sets)
    partitioned = run_lines[order]
    # MRU short-circuit (see set_distance_histogram): an access equal
    # to its set-partitioned predecessor is a distance-1 hit and a
    # stack no-op, so the dominance core runs over the collapsed
    # residue only.  First touches always survive the collapse, so
    # the ``cold`` mask is untouched.
    keep = np.empty(len(partitioned), dtype=bool)
    if len(partitioned):
        keep[0] = True
        np.not_equal(partitioned[1:], partitioned[:-1], out=keep[1:])
    reduced = partitioned[keep]
    seq_prev = previous_occurrences(reduced)
    part = np.ones(len(partitioned), dtype=np.int64)
    part[keep] = dominance_counts(seq_prev) - seq_prev
    distances = np.empty(len(run_lines), dtype=np.int64)
    distances[order] = part
    return distances, cold


def _shallow_outcomes(run_lines: np.ndarray, n_sets: int,
                      ways: int) -> np.ndarray:
    """Per-access miss verdicts for ``ways <= 2``, without dominance
    counting.

    Partition the stream by set and drop consecutive same-set
    duplicates: the dropped positions are exactly the distance-1 hits,
    and in the remaining (adjacent-distinct) subsequence a warm access
    at distance 2 is exactly one whose line reappears two slots after
    its previous occurrence -- any farther, and the window between the
    two occurrences holds two adjacent-distinct accesses to lines other
    than it, i.e. at least two distinct lines, pushing the distance
    past 2.  So the whole verdict is two shifted comparisons, O(n)
    instead of the O(n log n) merge count.  Line equality implies set
    equality (each line maps to one set), so no set-id comparisons are
    needed.
    """
    n = len(run_lines)
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = None
    grouped = run_lines
    if n_sets > 1:
        order = _partition_order(run_lines, n_sets)
        grouped = run_lines[order]
    dup = np.zeros(n, dtype=bool)
    np.equal(grouped[1:], grouped[:-1], out=dup[1:])
    kept = np.flatnonzero(~dup)
    collapsed = grouped[kept]
    miss_part = np.empty(n, dtype=bool)
    miss_part[dup] = False
    miss_collapsed = np.ones(len(collapsed), dtype=bool)
    if ways == 2 and len(collapsed) > 2:
        np.not_equal(collapsed[2:], collapsed[:-2], out=miss_collapsed[2:])
    miss_part[kept] = miss_collapsed
    if order is None:
        return miss_part
    miss = np.empty(n, dtype=bool)
    miss[order] = miss_part
    return miss


def run_outcomes(run_lines: np.ndarray, config: CacheConfig,
                 prev: np.ndarray = None) -> tuple:
    """``(miss, cold)`` boolean masks per access of a collapsed run
    stream through a set-associative LRU cache.

    Exactness: a set-associative LRU cache is ``n_sets`` independent
    fully-associative LRU stacks, and an access hits iff its set's
    stack holds the line -- i.e. iff fewer than ``ways`` distinct lines
    of the same set were touched since its previous access.  That count
    is exactly the set-relative stack distance, so

        miss  <=>  cold  or  set-relative distance > ways,

    matching the sequential :class:`~repro.core.cache.LRUCache` verdict
    per access, not just in aggregate.  Direct-mapped and two-way
    configurations (the paper's main design points) resolve the
    threshold by adjacency (:func:`_shallow_outcomes`); deeper
    associativities take the full per-set distance computation.
    """
    run_lines = np.asarray(run_lines, dtype=np.int64)
    if prev is None:
        prev = previous_occurrences(run_lines)
    cold = prev < 0
    if config.ways <= 2:
        return _shallow_outcomes(run_lines, config.n_sets, config.ways), cold
    distances, _ = per_set_distances(run_lines, config.n_sets, prev=prev)
    return cold | (distances > config.ways), cold


def line_miss_mask(lines: np.ndarray, config: CacheConfig) -> np.ndarray:
    """Per-access hit/miss verdicts for an *uncollapsed* line-address
    stream (True = miss).  Consecutive duplicates are guaranteed LRU
    hits, so outcomes are computed on the collapsed runs and scattered
    back; positions between run heads stay False."""
    lines = np.asarray(lines, dtype=np.int64).ravel()
    outcomes = np.zeros(len(lines), dtype=bool)
    if len(lines) == 0:
        return outcomes
    keep = np.empty(len(lines), dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    miss, _ = run_outcomes(lines[keep], config)
    outcomes[keep] = miss
    return outcomes


def miss_mask(addresses: np.ndarray, config: CacheConfig) -> np.ndarray:
    """Per-access hit/miss verdicts for a byte-address stream through
    ``config`` (True = miss); exact drop-in for recording
    :meth:`LRUCache.access` returns along the trace."""
    shift = int(config.line_size).bit_length() - 1
    lines = np.asarray(addresses, dtype=np.int64).ravel() >> shift
    return line_miss_mask(lines, config)


def miss_stream(addresses: np.ndarray, config: CacheConfig) -> np.ndarray:
    """The exact line-address sequence ``config`` fetches from the next
    level down (its misses, in access order) for a byte-address
    stream."""
    shift = int(config.line_size).bit_length() - 1
    lines = np.asarray(addresses, dtype=np.int64).ravel() >> shift
    if len(lines) == 0:
        return lines
    keep = np.empty(len(lines), dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    run_lines = lines[keep]
    miss, _ = run_outcomes(run_lines, config)
    return run_lines[miss]


@dataclass
class SetDistanceProfile:
    """Per-set stack-distance summary of one trace, keyed by
    ``(line_size, n_sets)``.

    One profile yields the exact miss count of **every** LRU cache
    organization sharing its line size and set count -- associativity
    ``w`` means capacity ``n_sets * w * line_size`` -- via
    :meth:`misses_at`.  ``n_sets == 1`` coincides with the
    fully-associative :class:`~repro.core.stackdist.DistanceProfile`.
    """

    line_size: int
    n_sets: int
    counts: np.ndarray
    cold: int
    duplicate_hits: int

    @property
    def total_accesses(self) -> int:
        return int(self.counts.sum()) + self.cold + self.duplicate_hits

    @classmethod
    def from_stream(cls, stream: LineStream, n_sets: int,
                    prev: np.ndarray = None) -> "SetDistanceProfile":
        counts, cold = set_distance_histogram(stream.run_lines, n_sets,
                                              prev=prev)
        return cls(line_size=stream.line_size, n_sets=n_sets, counts=counts,
                   cold=cold, duplicate_hits=stream.duplicate_hits)

    @classmethod
    def from_blocks(cls, blocks, line_size: int,
                    n_sets: int) -> "SetDistanceProfile":
        """Fold :meth:`from_stream` over an iterable of *raw*
        (uncollapsed) line-address blocks.

        Exactly equal -- same counts, cold and duplicate-hit fields --
        to :meth:`from_stream` over the concatenated stream, for any
        partition of the stream into blocks, while holding only one
        block plus :class:`PartialSetProfile` state (bounded by the
        number of distinct lines, not the trace length) in memory.
        """
        state = PartialSetProfile.empty(line_size, n_sets)
        for block in blocks:
            state = state.merge(PartialSetProfile.from_lines(
                block, line_size, n_sets))
        return state.finalize()

    def misses_at(self, ways: int) -> int:
        """Exact miss count for the ``ways``-associative LRU cache of
        ``n_sets * ways * line_size`` bytes."""
        if ways < 1:
            raise ValueError("ways must be at least one line per set")
        upto = min(ways + 1, len(self.counts))
        hits_within = int(self.counts[:upto].sum())
        return int(self.counts.sum()) - hits_within + self.cold

    def stats_pair(self, config: CacheConfig) -> tuple:
        """``(misses, cold_misses)`` for ``config``, which must share
        this profile's line size and set count."""
        if config.line_size != self.line_size:
            raise ValueError(
                f"config line size {config.line_size} != profile {self.line_size}")
        if config.n_sets != self.n_sets:
            raise ValueError(
                f"config has {config.n_sets} sets, profile {self.n_sets}")
        return self.misses_at(config.ways), self.cold

    def stats_for(self, config: CacheConfig) -> CacheStats:
        """The :class:`CacheStats` this profile implies for ``config``
        (which must share this profile's line size and set count)."""
        misses, cold = self.stats_pair(config)
        return CacheStats(
            config=config,
            accesses=self.total_accesses,
            misses=misses,
            cold_misses=cold,
        )


def _set_offsets(set_ids: np.ndarray, n_sets: int) -> np.ndarray:
    """Group bounds of a set-grouped array: set ``s`` occupies
    ``[offsets[s], offsets[s+1])``."""
    offsets = np.zeros(n_sets + 1, dtype=np.int64)
    np.cumsum(np.bincount(set_ids, minlength=n_sets), out=offsets[1:])
    return offsets


def _grouped_rank(offsets: np.ndarray, n: int) -> np.ndarray:
    """0-based within-group rank of each element of a grouped array."""
    return (np.arange(n, dtype=np.int64)
            - np.repeat(offsets[:-1], np.diff(offsets)))


def _member_positions(sorted_values: np.ndarray, queries: np.ndarray) -> tuple:
    """``(found, pos)``: membership of ``queries`` in the sorted,
    duplicate-free ``sorted_values``, with ``pos`` the match index
    (meaningful only where ``found``)."""
    if len(sorted_values) == 0 or len(queries) == 0:
        return (np.zeros(len(queries), dtype=bool),
                np.zeros(len(queries), dtype=np.int64))
    pos = np.searchsorted(sorted_values, queries)
    np.minimum(pos, len(sorted_values) - 1, out=pos)
    return sorted_values[pos] == queries, pos


@dataclass
class PartialSetProfile:
    """Resumable per-block stack-distance state for one
    ``(line_size, n_sets)`` pair -- the unit the streaming pipeline
    folds over :class:`~repro.pipeline.trace.FragmentBlock` chunks.

    The state of a stream segment is everything a *later* segment can
    observe about it plus everything an *earlier* segment could still
    change about it:

    * ``counts`` -- histogram of distances already closed inside the
      segment (an access whose previous same-line touch is also in the
      segment; its distance window is sealed and no merge can move it);
    * ``open_lines`` -- the segment's first touches, per set in
      first-touch order.  Their distances depend on what precedes the
      segment, so they stay symbolic until a left merge resolves them
      (or :meth:`finalize` declares them cold);
    * ``stack_lines`` -- the segment's distinct lines per set in
      MRU-first (last-occurrence) order: the exact LRU stack a later
      segment's opens land on;
    * ``first_line`` / ``last_line`` -- raw boundary addresses, so a
      merge can credit a boundary duplicate as the collapsed stream
      would.

    :meth:`merge` is exact -- ``a.merge(b)`` equals
    ``from_lines(concat(a_lines, b_lines))`` field for field -- which
    makes it associative, so any block partition of a stream (and any
    merge tree over the per-shard partials) finalizes to the identical
    :class:`SetDistanceProfile`.

    The resolution formula: for segment ``b``'s ``k``-th open of a set
    (1-based first-touch order) found at depth ``d`` (1 = MRU) in
    segment ``a``'s ending stack, the distinct lines touched between
    the two occurrences are ``b``'s ``k - 1`` earlier opens of the set
    unioned with the ``d - 1`` lines above it in ``a``'s stack, so

        distance = k + d - 1 - #{earlier opens resident above it},

    and the correction term is a per-set dominance count over
    (first-touch order, depth) pairs -- the same merge-counting kernel
    the in-RAM path uses.
    """

    line_size: int
    n_sets: int
    counts: np.ndarray
    duplicate_hits: int
    total_accesses: int
    stack_lines: np.ndarray
    open_lines: np.ndarray
    offsets: np.ndarray
    first_line: int
    last_line: int

    @classmethod
    def empty(cls, line_size: int, n_sets: int) -> "PartialSetProfile":
        """The merge identity (profile of the empty stream)."""
        if n_sets < 1:
            raise ValueError("n_sets must be at least 1")
        return cls(line_size=line_size, n_sets=n_sets,
                   counts=np.zeros(1, dtype=np.int64), duplicate_hits=0,
                   total_accesses=0,
                   stack_lines=np.empty(0, dtype=np.int64),
                   open_lines=np.empty(0, dtype=np.int64),
                   offsets=np.zeros(n_sets + 1, dtype=np.int64),
                   first_line=-1, last_line=-1)

    @classmethod
    def from_lines(cls, lines: np.ndarray, line_size: int,
                   n_sets: int) -> "PartialSetProfile":
        """State of one raw (uncollapsed) line-address block."""
        if n_sets < 1:
            raise ValueError("n_sets must be at least 1")
        lines = np.asarray(lines, dtype=np.int64).ravel()
        if len(lines) == 0:
            return cls.empty(line_size, n_sets)
        run_lines, duplicate_hits = collapse_consecutive(lines)
        return cls.from_runs(run_lines, previous_occurrences(run_lines),
                             duplicate_hits, len(lines), line_size, n_sets)

    @classmethod
    def from_runs(cls, run_lines: np.ndarray, prev: np.ndarray,
                  duplicate_hits: int, total_accesses: int,
                  line_size: int, n_sets: int) -> "PartialSetProfile":
        """State of one collapsed run stream given its
        :func:`previous_occurrences`.  The collapse and the prev
        argsort depend only on the line size, so a fold computing many
        set counts over one block pays for them once and calls this
        per ``n_sets`` (:func:`from_lines` is the convenience form)."""
        if len(run_lines) == 0:
            return cls.empty(line_size, n_sets)
        counts, _ = set_distance_histogram(run_lines, n_sets, prev=prev)
        n = len(run_lines)
        if n_sets > 1:
            sets = run_lines % n_sets
        else:
            sets = np.zeros(n, dtype=np.int64)
        open_idx = np.flatnonzero(prev < 0)
        open_order = open_idx[_argsort_bounded(sets[open_idx], n_sets)]
        last_mask = np.ones(n, dtype=bool)
        last_mask[prev[prev >= 0]] = False
        last_idx = np.flatnonzero(last_mask)[::-1]  # MRU first
        stack_order = last_idx[_argsort_bounded(sets[last_idx], n_sets)]
        return cls(line_size=line_size, n_sets=n_sets,
                   counts=counts.astype(np.int64, copy=False),
                   duplicate_hits=duplicate_hits,
                   total_accesses=total_accesses,
                   stack_lines=run_lines[stack_order],
                   open_lines=run_lines[open_order],
                   offsets=_set_offsets(sets[open_idx], n_sets),
                   first_line=int(run_lines[0]),
                   last_line=int(run_lines[-1]))

    @classmethod
    def from_addresses(cls, addresses: np.ndarray, line_size: int,
                       n_sets: int) -> "PartialSetProfile":
        return cls.from_lines(to_lines(addresses, line_size),
                              line_size, n_sets)

    def merge(self, other: "PartialSetProfile") -> "PartialSetProfile":
        """State of ``self``'s stream followed by ``other``'s."""
        a, b = self, other
        if a.line_size != b.line_size or a.n_sets != b.n_sets:
            raise ValueError(
                f"cannot merge ({a.line_size}B, {a.n_sets} sets) with "
                f"({b.line_size}B, {b.n_sets} sets)")
        if a.total_accesses == 0:
            return b
        if b.total_accesses == 0:
            return a
        n_sets = a.n_sets

        # Resolve b's opens against a's ending stack.  Lines never
        # span sets, so one global sorted lookup serves every set.
        sort_a = np.argsort(a.stack_lines)
        found, pos = _member_positions(a.stack_lines[sort_a], b.open_lines)
        hit_idx = np.flatnonzero(found)
        a_rank = _grouped_rank(a.offsets, len(a.stack_lines))
        depth = a_rank[sort_a[pos[hit_idx]]] + 1       # 1 = MRU
        k = _grouped_rank(b.offsets, len(b.open_lines))[hit_idx] + 1

        if len(hit_idx):
            # Overlap correction: per set, count earlier resolved opens
            # sitting strictly above this line in a's stack.  Rank-
            # compress (set, depth) keys -- distinct within a set -- and
            # reuse the dominance kernel; earlier sets always dominate,
            # so subtracting each group's start rebases the count per
            # set (the `_partitioned_prev` trick).
            m = len(hit_idx)
            if n_sets > 1:
                hit_sets = b.open_lines[hit_idx] % n_sets  # ascending
            else:
                hit_sets = np.zeros(m, dtype=np.int64)
            change = np.empty(m, dtype=bool)
            change[0] = True
            np.not_equal(hit_sets[1:], hit_sets[:-1], out=change[1:])
            starts = np.flatnonzero(change)
            base = np.repeat(starts, np.diff(np.append(starts, m)))
            comp = np.empty(m, dtype=np.int64)
            comp[np.lexsort((depth, hit_sets))] = np.arange(m, dtype=np.int64)
            overlap = dominance_counts(comp) - base
            resolved = np.bincount(k + depth - 1 - overlap)
        else:
            resolved = np.zeros(1, dtype=np.int64)

        duplicate_hits = a.duplicate_hits + b.duplicate_hits
        if b.first_line == a.last_line:
            # The concatenated stream collapses b's leading access into
            # a's final run.  That access is b's first open of its set
            # (k == 1) landing on a's MRU (d == 1), so it resolved to
            # distance 1 above; re-credit it as the collapsed hit it
            # is.  Dropping an MRU repeat perturbs no other window, so
            # every remaining count already matches the collapsed
            # stream.
            resolved[1] -= 1
            duplicate_hits += 1

        length = max(len(a.counts), len(b.counts), len(resolved))
        counts = np.zeros(length, dtype=np.int64)
        counts[:len(a.counts)] += a.counts
        counts[:len(b.counts)] += b.counts
        counts[:len(resolved)] += resolved
        # Keep the histogram canonical (no trailing zeros; the
        # boundary correction can zero the last bin) so merged states
        # compare equal to from_lines states regardless of merge order.
        nonzero = np.flatnonzero(counts)
        counts = counts[:int(nonzero[-1]) + 1] if len(nonzero) \
            else np.zeros(1, dtype=np.int64)

        # Merged stack: b's stack over a's survivors (lines b did not
        # re-touch), per set.  A composite (set, source) key with one
        # stable bounded sort interleaves the groups while preserving
        # each source's internal order.
        b_touched = np.sort(b.stack_lines)
        retouched, _ = _member_positions(b_touched, a.stack_lines)
        survivors = a.stack_lines[~retouched]
        stack_cat = np.concatenate([b.stack_lines, survivors])
        open_cat = np.concatenate([a.open_lines, b.open_lines[~found]])

        def interleave(cat, n_first):
            if n_sets > 1:
                sets_cat = cat % n_sets
            else:
                sets_cat = np.zeros(len(cat), dtype=np.int64)
            source = np.ones(len(cat), dtype=np.int64)
            source[:n_first] = 0
            order = _argsort_bounded(sets_cat * 2 + source, 2 * n_sets)
            return cat[order], sets_cat

        stack_lines, stack_sets = interleave(stack_cat, len(b.stack_lines))
        open_lines, _ = interleave(open_cat, len(a.open_lines))
        return PartialSetProfile(
            line_size=a.line_size, n_sets=n_sets, counts=counts,
            duplicate_hits=duplicate_hits,
            total_accesses=a.total_accesses + b.total_accesses,
            stack_lines=stack_lines, open_lines=open_lines,
            offsets=_set_offsets(stack_sets, n_sets),
            first_line=a.first_line, last_line=b.last_line)

    def finalize(self) -> SetDistanceProfile:
        """Close the fold: unresolved opens are the cold misses."""
        nonzero = np.flatnonzero(self.counts)
        if len(nonzero):
            counts = self.counts[:int(nonzero[-1]) + 1]
        else:
            counts = np.zeros(1, dtype=np.int64)
        return SetDistanceProfile(
            line_size=self.line_size, n_sets=self.n_sets,
            counts=counts.astype(np.int64, copy=False),
            cold=len(self.open_lines), duplicate_hits=self.duplicate_hits)


def simulate_stream(stream: LineStream, config: CacheConfig) -> CacheStats:
    """Vectorized exact LRU simulation of one collapsed stream."""
    return SetDistanceProfile.from_stream(stream, config.n_sets).stats_for(config)


def sequence_stats(collapsed_segments, config: CacheConfig) -> list:
    """Per-segment :class:`CacheStats` for consecutive collapsed
    segments through ONE LRU cache (the inter-frame study).

    ``collapsed_segments`` is a list of ``(run_lines, duplicate_hits)``
    pairs, each collapsed independently so boundary repeats still count
    as (distance-1) hits of the later segment.  Concatenating the
    segments reproduces the carried cache state exactly: a per-set
    stack distance never sees segment boundaries, just like the warm
    cache it models.
    """
    if not collapsed_segments:
        return []
    runs = [np.asarray(r, dtype=np.int64) for r, _ in collapsed_segments]
    lengths = np.array([len(r) for r in runs], dtype=np.int64)
    joined = np.concatenate(runs) if runs else np.empty(0, dtype=np.int64)
    segment = np.repeat(np.arange(len(runs), dtype=np.int64), lengths)

    if config.n_sets > 1:
        order = np.argsort(joined % config.n_sets, kind="stable")
        joined = joined[order]
        segment = segment[order]
    prev = previous_occurrences(joined)
    cold = prev < 0
    distances = dominance_counts(prev) - prev  # only valid where warm
    miss = cold | (~cold & (distances > config.ways))

    n_segments = len(runs)
    miss_counts = np.bincount(segment[miss], minlength=n_segments)
    cold_counts = np.bincount(segment[cold], minlength=n_segments)
    stats = []
    for index, (run_lines, duplicate_hits) in enumerate(collapsed_segments):
        stats.append(CacheStats(
            config=config,
            accesses=int(lengths[index]) + int(duplicate_hits),
            misses=int(miss_counts[index]),
            cold_misses=int(cold_counts[index]),
        ))
    return stats


__all__ = [
    "COLD",
    "KERNELS",
    "PartialSetProfile",
    "SetDistanceProfile",
    "check_kernel",
    "dominance_counts",
    "line_miss_mask",
    "miss_mask",
    "miss_stream",
    "per_set_distances",
    "previous_occurrences",
    "run_outcomes",
    "sequence_stats",
    "set_distance_histogram",
    "set_partition",
    "simulate_stream",
    "stack_distances",
]

"""Texture memory bandwidth model (paper Section 7.2, Table 7.1).

At a sustained rate of 50 million textured fragments per second:

* an **uncached** system fetches every texel from DRAM:
  4 bytes/texel * 8 texels/fragment * 50 M fragments/s
  = 1.5 GBytes/second;
* a **cached** system only transfers missed lines:
  miss_rate * 8 texels/fragment * 50 M fragments/s * line_size bytes.

The paper reports megabytes using binary units (2**20 bytes), which we
follow so Table 7.1's numbers are directly comparable.
"""

from __future__ import annotations

from .machine import PAPER_MACHINE, MachineModel

MBYTE = float(1 << 20)
GBYTE = float(1 << 30)


def uncached_bandwidth(machine: MachineModel = PAPER_MACHINE) -> float:
    """DRAM bandwidth (bytes/s) without a texture cache."""
    return (
        machine.texel_nbytes
        * machine.texels_per_fragment
        * machine.peak_fragments_per_second
    )


def cached_bandwidth(
    miss_rate: float, line_size: int, machine: MachineModel = PAPER_MACHINE
) -> float:
    """DRAM bandwidth (bytes/s) with a texture cache at ``miss_rate``.

    Every miss transfers one full line; the fragment rate is the
    machine's peak (latency assumed hidden, Section 7.1.1).
    """
    if not 0.0 <= miss_rate <= 1.0:
        raise ValueError(f"miss_rate must be within [0, 1], got {miss_rate}")
    accesses_per_second = machine.texels_per_fragment * machine.peak_fragments_per_second
    return miss_rate * accesses_per_second * line_size


def reduction_factor(
    miss_rate: float, line_size: int, machine: MachineModel = PAPER_MACHINE
) -> float:
    """How many times less bandwidth the cached system needs.

    The paper's headline: between three and fifteen for a 32 KB cache.
    """
    cached = cached_bandwidth(miss_rate, line_size, machine)
    if cached == 0.0:
        return float("inf")
    return uncached_bandwidth(machine) / cached


def mbytes_per_second(bytes_per_second: float) -> float:
    """Convert to the paper's MBytes/second (binary mega)."""
    return bytes_per_second / MBYTE

"""Parallel texture caching (paper Sections 7.2 and 8).

"The memory bandwidths are low enough that a parallel system could be
built with multiple fragment generators sharing a single texture
memory, each with their own cache" (Section 7.2) -- avoiding the
RealityEngine's replication of every texture in every generator's
memory.  Section 8 then poses the open question this module studies:
"how to balance the work among multiple fragment generators without
reducing the spatial locality in each reference stream."

A :class:`WorkDistribution` assigns each fragment (by screen position)
to one of ``n_generators``; the frame's texel trace is split into
per-generator streams, each simulated against its own private cache.
Because the texture memory is shared and read-only, no coherence
traffic is modelled (the paper: "no cache coherence is needed since
the texture data is mostly read-only").

Metrics capture the paper's tension: finer interleaving balances load
but slices up the spatial locality each cache sees (higher per-stream
miss rates, more lines fetched redundantly by multiple generators).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pipeline.trace import TexelTrace
from ..texture.memory import AddressMapper
from .cache import CacheConfig, simulate, to_lines
from .machine import PAPER_MACHINE, MachineModel


class WorkDistribution:
    """Maps fragment screen positions to generator ids."""

    name = "distribution"

    def __init__(self, n_generators: int):
        if n_generators < 1:
            raise ValueError("need at least one generator")
        self.n_generators = n_generators

    def assign(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class TileInterleave(WorkDistribution):
    """Screen tiles dealt round-robin to generators (fine-grained
    balance; tile size controls how much locality each stream keeps)."""

    def __init__(self, n_generators: int, tile: int = 32):
        super().__init__(n_generators)
        if tile < 1:
            raise ValueError("tile must be positive")
        self.tile = tile
        self.name = f"tile{tile}-interleave"

    def assign(self, x, y):
        tile_x = x.astype(np.int64) // self.tile
        tile_y = y.astype(np.int64) // self.tile
        # Offset alternate tile rows so generators get a checkerboard
        # rather than vertical columns of tiles.
        return ((tile_x + tile_y) % self.n_generators).astype(np.int16)


class ScanlineInterleave(WorkDistribution):
    """Alternate scan lines per generator (classic SLI; the finest
    practical interleave -- maximum balance, minimum locality)."""

    name = "scanline-interleave"

    def assign(self, x, y):
        return (y.astype(np.int64) % self.n_generators).astype(np.int16)


class StripSplit(WorkDistribution):
    """Contiguous horizontal screen bands (maximum locality per stream,
    load balance at the scene's mercy)."""

    def __init__(self, n_generators: int, height: int):
        super().__init__(n_generators)
        if height < n_generators:
            raise ValueError("screen shorter than the generator count")
        self.height = height
        self.name = "strip-split"

    def assign(self, x, y):
        band = max(-(-self.height // self.n_generators), 1)
        return np.minimum(y.astype(np.int64) // band,
                          self.n_generators - 1).astype(np.int16)


@dataclass
class ParallelStats:
    """Outcome of simulating a multi-generator texture system."""

    distribution: str
    config: CacheConfig
    per_generator: list
    fragments_per_generator: np.ndarray
    redundancy: float

    @property
    def n_generators(self) -> int:
        return len(self.per_generator)

    @property
    def total_accesses(self) -> int:
        return sum(s.accesses for s in self.per_generator)

    @property
    def total_misses(self) -> int:
        return sum(s.misses for s in self.per_generator)

    @property
    def aggregate_miss_rate(self) -> float:
        total = self.total_accesses
        return self.total_misses / total if total else 0.0

    @property
    def load_imbalance(self) -> float:
        """Max over mean fragments per generator (1.0 = perfect)."""
        mean = self.fragments_per_generator.mean()
        if mean == 0:
            return 1.0
        return float(self.fragments_per_generator.max() / mean)

    def shared_memory_bandwidth(self, machine: MachineModel = PAPER_MACHINE) -> float:
        """Bytes/second drawn from the shared DRAM by all generators,
        with each generator sustaining the machine's peak fragment
        rate (the paper's aggregate-bandwidth question)."""
        accesses_per_second = (machine.texels_per_fragment
                               * machine.peak_fragments_per_second)
        return (self.aggregate_miss_rate * accesses_per_second
                * self.config.line_size * self.n_generators)


def split_trace(trace: TexelTrace, distribution: WorkDistribution) -> list:
    """Split a position-annotated trace into per-generator sub-traces,
    preserving each stream's access order."""
    if not trace.has_positions:
        raise ValueError(
            "trace lacks screen positions; render with record_positions=True")
    owner = distribution.assign(trace.x, trace.y)
    return [trace.subset(owner == gen) for gen in range(distribution.n_generators)]


def simulate_parallel(
    trace: TexelTrace,
    placements,
    distribution: WorkDistribution,
    config: CacheConfig,
    kernel: str = "vectorized",
) -> ParallelStats:
    """Simulate private per-generator caches over a shared texture
    memory.

    ``redundancy`` in the result is the number of distinct lines
    fetched summed across generators divided by the distinct lines of
    the whole frame: 1.0 means no texture data was fetched by more than
    one generator; the excess is traffic the single-generator system
    would not have paid.  ``kernel`` selects the per-generator LRU
    simulation path (see :func:`repro.core.cache.simulate`).
    """
    if not trace.has_positions:
        raise ValueError(
            "trace lacks screen positions; render with record_positions=True")
    # Map the whole frame once (one grouping pass), then carve out each
    # generator's stream: the per-access addresses are identical however
    # the work is distributed.
    mapped = AddressMapper(placements).map_trace(trace)
    owner = distribution.assign(trace.x, trace.y)
    stats = []
    distinct_lines = []
    fragments = np.zeros(distribution.n_generators, dtype=np.int64)
    for index in range(distribution.n_generators):
        mask = owner == index
        addresses = mapped[mask].reshape(-1)
        stats.append(simulate(addresses, config, kernel=kernel))
        distinct_lines.append(np.unique(to_lines(addresses, config.line_size)))
        # Eight accesses per trilinear fragment; bilinear fragments
        # contribute four -- fragment share approximated by accesses.
        fragments[index] = int(np.count_nonzero(mask))
    # Distinct-line bookkeeping stays in arrays: per-generator uniques
    # concatenate into one frame-wide np.unique instead of accumulating
    # a Python set line by line.
    distinct_sum = sum(len(lines) for lines in distinct_lines)
    union = np.unique(np.concatenate(distinct_lines)) \
        if distinct_lines else np.empty(0, dtype=np.int64)
    redundancy = distinct_sum / max(len(union), 1)
    return ParallelStats(
        distribution=distribution.name,
        config=config,
        per_generator=stats,
        fragments_per_generator=fragments,
        redundancy=redundancy,
    )

"""Trace-driven texture cache simulator (paper Sections 3.2, 4.1).

The cache is characterized by three parameters (Section 3.2): cache
size, line size, and associativity, with LRU replacement.  The
simulator consumes byte-address streams produced by the rendering
pipeline and reports hit/miss statistics.

Two exactness-preserving optimizations keep multi-configuration studies
tractable in Python:

* byte addresses are reduced to cache-line addresses up front, and
* consecutive duplicate line addresses are collapsed into runs.  A
  repeat access to the most-recently-used line is always a hit and does
  not reorder the LRU stack, so collapsing is exact for any LRU cache;
  the suppressed accesses are credited back as hits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..texture.image import is_power_of_two, log2_int


@dataclass(frozen=True)
class CacheConfig:
    """An SRAM texture cache organization.

    Parameters
    ----------
    size:
        Total capacity in bytes.
    line_size:
        Line (block transfer) size in bytes; must be a power of two.
    assoc:
        Ways per set; ``None`` means fully associative.
    """

    size: int
    line_size: int
    assoc: Optional[int] = None

    def __post_init__(self) -> None:
        if not is_power_of_two(self.line_size):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")
        if self.size <= 0 or self.size % self.line_size != 0:
            raise ValueError(
                f"size ({self.size}) must be a positive multiple of line_size"
            )
        if self.assoc is not None:
            if self.assoc <= 0:
                raise ValueError("assoc must be positive")
            # assoc beyond n_lines degrades gracefully to fully associative.
            if self.n_lines % self.ways != 0:
                raise ValueError(
                    f"{self.n_lines} lines cannot be divided into {self.assoc}-way sets"
                )

    @property
    def n_lines(self) -> int:
        """Number of cache lines."""
        return self.size // self.line_size

    @property
    def ways(self) -> int:
        """Lines per set (= ``n_lines`` when fully associative)."""
        return self.n_lines if self.assoc is None else min(self.assoc, self.n_lines)

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.n_lines // self.ways

    @property
    def fully_associative(self) -> bool:
        return self.assoc is None or self.assoc >= self.n_lines

    def label(self) -> str:
        """Short human-readable description used in reports."""
        if self.fully_associative:
            assoc = "full"
        elif self.ways == 1:
            assoc = "direct"
        else:
            assoc = f"{self.ways}-way"
        return f"{self.size // 1024}KB/{self.line_size}B/{assoc}"


@dataclass
class CacheStats:
    """Outcome of simulating one trace against one cache.

    ``capacity_misses`` and ``conflict_misses`` are ``None`` unless the
    stats came from :func:`repro.core.classify.classify_misses`.
    """

    config: CacheConfig
    accesses: int
    misses: int
    cold_misses: int
    capacity_misses: Optional[int] = None
    conflict_misses: Optional[int] = None
    extra: dict = field(default_factory=dict)

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate

    @property
    def cold_miss_rate(self) -> float:
        return self.cold_misses / self.accesses if self.accesses else 0.0


def to_lines(addresses: np.ndarray, line_size: int) -> np.ndarray:
    """Reduce byte addresses to line addresses."""
    shift = log2_int(line_size)
    return np.asarray(addresses, dtype=np.int64).ravel() >> shift


def collapse_consecutive(lines: np.ndarray) -> tuple:
    """Collapse runs of identical consecutive line addresses.

    Returns ``(run_lines, duplicate_hits)`` where ``duplicate_hits`` is
    the number of suppressed accesses, all of which are guaranteed LRU
    hits.
    """
    lines = np.asarray(lines, dtype=np.int64)
    if len(lines) == 0:
        return lines, 0
    keep = np.empty(len(lines), dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    run_lines = lines[keep]
    return run_lines, int(len(lines) - len(run_lines))


@dataclass
class LineStream:
    """A collapsed line-address stream, reusable across cache configs
    that share a line size."""

    line_size: int
    run_lines: np.ndarray
    total_accesses: int

    @classmethod
    def from_addresses(cls, addresses: np.ndarray, line_size: int) -> "LineStream":
        lines = to_lines(addresses, line_size)
        run_lines, _ = collapse_consecutive(lines)
        return cls(line_size=line_size, run_lines=run_lines, total_accesses=len(lines))

    @property
    def duplicate_hits(self) -> int:
        return self.total_accesses - len(self.run_lines)


class LRUCache:
    """A single set-associative LRU cache with an ``access`` method.

    This is the reference sequential implementation; it is also the
    workhorse of :func:`simulate` (operating on collapsed streams).
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets = [OrderedDict() for _ in range(config.n_sets)]
        self._ways = config.ways
        self._set_mask = config.n_sets - 1 if is_power_of_two(config.n_sets) else None
        self._n_sets = config.n_sets
        self._seen = set()
        self.accesses = 0
        self.misses = 0
        self.cold_misses = 0

    def _set_index(self, line: int) -> int:
        if self._set_mask is not None:
            return line & self._set_mask
        return line % self._n_sets

    def access(self, line: int) -> bool:
        """Access one line address; returns True on a hit."""
        self.accesses += 1
        target = self._sets[self._set_index(line)]
        if line in target:
            target.move_to_end(line)
            return True
        self.misses += 1
        if line not in self._seen:
            self.cold_misses += 1
            self._seen.add(line)
        target[line] = None
        if len(target) > self._ways:
            target.popitem(last=False)
        return False

    def flush(self) -> None:
        """Invalidate every line (Section 3.2: "the caches can be
        flushed if necessary when the textures change").  Statistics
        are preserved; previously-seen lines stay non-cold."""
        for target in self._sets:
            target.clear()

    def contents(self) -> set:
        """Line addresses currently resident (for tests)."""
        resident = set()
        for target in self._sets:
            resident.update(target.keys())
        return resident

    def stats(self) -> CacheStats:
        return CacheStats(
            config=self.config,
            accesses=self.accesses,
            misses=self.misses,
            cold_misses=self.cold_misses,
        )


def _simulate_runs(
    run_lines: np.ndarray, config: CacheConfig, policy: str = "lru",
    seed: int = 0,
) -> tuple:
    """Simulate a collapsed stream; returns (misses, cold_misses).

    ``policy`` selects the replacement policy: ``lru`` (the paper's
    assumption), ``fifo`` (hits do not refresh), or ``random`` (evict a
    uniformly random resident line; deterministic under ``seed``).
    Inner loop kept deliberately flat: line addresses are converted to
    Python ints once (numpy scalar hashing is slow) and set lookup,
    move-to-end and eviction are all O(1).
    """
    if policy not in ("lru", "fifo", "random"):
        raise ValueError(f"unknown replacement policy {policy!r}")
    ways = config.ways
    n_sets = config.n_sets
    mask = n_sets - 1 if is_power_of_two(n_sets) else None
    sets = [OrderedDict() for _ in range(n_sets)]
    seen = set()
    misses = 0
    cold = 0
    refresh_on_hit = policy == "lru"
    rng = np.random.default_rng(seed) if policy == "random" else None
    for line in run_lines.tolist():
        target = sets[line & mask] if mask is not None else sets[line % n_sets]
        if line in target:
            if refresh_on_hit:
                target.move_to_end(line)
            continue
        misses += 1
        if line not in seen:
            cold += 1
            seen.add(line)
        target[line] = None
        if len(target) > ways:
            if rng is None:
                target.popitem(last=False)
            else:
                # Evict a random resident line (not the one just added).
                residents = list(target.keys())[:-1]
                del target[residents[rng.integers(0, len(residents))]]
    return misses, cold


def collapse_segments(segments, line_size: int) -> list:
    """Collapse each byte-address segment to line-address runs.

    The shared front half of every multi-segment simulation: returns a
    list of ``(run_lines, duplicate_hits)`` pairs, one per segment,
    ready for either the reference cache loop or the vectorized
    kernels.  Collapsing is per-segment, so a line straddling a
    boundary still charges the later segment its (guaranteed-hit)
    repeat accesses.
    """
    return [collapse_consecutive(to_lines(addresses, line_size))
            for addresses in segments]


def simulate_sequence(segments, config: CacheConfig,
                      kernel: str = "vectorized") -> list:
    """Simulate consecutive address segments through ONE cache,
    returning per-segment :class:`CacheStats`.

    Used for the inter-frame temporal locality study (Section 3.1.2):
    the second frame of an animation starts with the first frame's
    cache contents ("warm"), so its stats isolate whatever reuse
    survives between frames.  ``kernel="vectorized"`` (the default)
    computes all segments in one batched stack-distance pass;
    ``"reference"`` drives the sequential :class:`LRUCache`.
    """
    from . import kernels

    kernels.check_kernel(kernel)
    collapsed = collapse_segments(segments, config.line_size)
    if kernel == "vectorized":
        return kernels.sequence_stats(collapsed, config)
    cache = LRUCache(config)
    stats = []
    for lines, duplicate_hits in collapsed:
        start_misses = cache.misses
        start_cold = cache.cold_misses
        start_accesses = cache.accesses
        for line in lines.tolist():
            cache.access(line)
        stats.append(CacheStats(
            config=config,
            accesses=(cache.accesses - start_accesses) + duplicate_hits,
            misses=cache.misses - start_misses,
            cold_misses=cache.cold_misses - start_cold,
        ))
    return stats


def simulate(trace, config: CacheConfig, policy: str = "lru", seed: int = 0,
             kernel: str = "vectorized") -> CacheStats:
    """Simulate ``trace`` against ``config``.

    ``trace`` is either a byte-address array or a prepared
    :class:`LineStream` (whose ``line_size`` must match the config).
    ``policy`` selects the replacement policy (``lru``, ``fifo``,
    ``random``); note that collapsing consecutive duplicates is exact
    for all three (a repeat access to a resident line never evicts).

    ``kernel`` selects the implementation for the LRU policy:
    ``"vectorized"`` (default) uses the batched stack-distance kernels
    of :mod:`repro.core.kernels`, bit-identical to ``"reference"``,
    the sequential per-access loop.  FIFO and random replacement have
    no stack-distance characterization and always take the reference
    loop.
    """
    from . import kernels

    kernels.check_kernel(kernel)
    if isinstance(trace, LineStream):
        if trace.line_size != config.line_size:
            raise ValueError(
                f"LineStream line size {trace.line_size} != config {config.line_size}"
            )
        stream = trace
    else:
        stream = LineStream.from_addresses(trace, config.line_size)
    if policy == "lru" and kernel == "vectorized":
        return kernels.simulate_stream(stream, config)
    misses, cold = _simulate_runs(stream.run_lines, config, policy=policy, seed=seed)
    return CacheStats(
        config=config,
        accesses=stream.total_accesses,
        misses=misses,
        cold_misses=cold,
    )

"""Trace locality metrics (paper Sections 3.1.2 and 5.2.3).

The paper quantifies three forms of locality before studying caches:

* **accesses per texel** for trilinear lower level, trilinear upper
  level and bilinear filtering (measured 4, 14 and 18 respectively) --
  overlap between the filter footprints of neighboring fragments;
* **texture repetition** (Town 2.9x, Guitar 1.7x, Goblet 1.1x,
  Flight 1.0x) -- temporal locality from textures repeated across
  surfaces, measured here by comparing pre-wrap and post-wrap distinct
  texel counts;
* **same-texture runlengths** (hundreds of thousands of consecutive
  accesses) -- evidence the working set holds one texture at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pipeline.trace import KIND_BILINEAR, KIND_LOWER, KIND_UPPER, TexelTrace


def _distinct(keys: np.ndarray) -> int:
    return len(np.unique(keys)) if len(keys) else 0


def _texel_keys(texture_id, level, tu, tv) -> np.ndarray:
    """Pack (texture, level, tv, tu) into sortable int64 keys.

    Raw coordinates can be negative (pre-wrap floor at u < 0.5 texel),
    so coordinates are offset into a non-negative range first.
    """
    tu = tu.astype(np.int64) + (1 << 19)
    tv = tv.astype(np.int64) + (1 << 19)
    return (
        ((texture_id.astype(np.int64) * 64 + level) << 42)
        | (tv << 21)
        | tu
    )


@dataclass
class AccessesPerTexel:
    """Average accesses per distinct texel, by access kind."""

    lower: float
    upper: float
    bilinear: float

    def as_dict(self) -> dict:
        return {"lower": self.lower, "upper": self.upper, "bilinear": self.bilinear}


def accesses_per_texel(trace: TexelTrace, window: int = 8192) -> AccessesPerTexel:
    """Section 3.1.2's overlap metric.

    The paper measures "the average number of accesses per texel made
    by a *spatially contiguous group of fragments*": reuse between
    neighboring filter footprints, not reuse from a texture recurring
    elsewhere in the scene.  Spatially contiguous fragments are
    temporally contiguous in the access stream, so we evaluate the
    accesses/distinct-texels ratio inside windows of ``window``
    consecutive accesses (~1K fragments) and average them weighted by
    access count.  ``window=None`` computes the global ratio instead
    (which folds texture repetition in).

    The paper expects ~4 for the trilinear lower level, ~16 for the
    upper level, and scene-dependent values (~18) for bilinear
    magnification.
    """
    results = {}
    for kind, name in ((KIND_LOWER, "lower"), (KIND_UPPER, "upper"),
                       (KIND_BILINEAR, "bilinear")):
        mask = trace.kind == kind
        total = int(mask.sum())
        if total == 0:
            results[name] = 0.0
            continue
        keys = _texel_keys(
            trace.texture_id[mask], trace.level[mask],
            trace.tu[mask], trace.tv[mask],
        )
        if window is None:
            results[name] = total / _distinct(keys)
            continue
        distinct_total = 0
        for start in range(0, total, window):
            distinct_total += _distinct(keys[start:start + window])
        results[name] = total / distinct_total
    return AccessesPerTexel(**results)


def repetition_factor(trace: TexelTrace) -> float:
    """Section 3.1.2's texture repetition metric.

    The ratio of distinct *pre-wrap* texel coordinates to distinct
    *post-wrap* coordinates: a texture repeated three times across a
    surface touches three times as many raw coordinates as wrapped
    ones.  1.0 means no repetition.
    """
    if trace.n_accesses == 0:
        return 1.0
    wrapped = _distinct(_texel_keys(trace.texture_id, trace.level, trace.tu, trace.tv))
    raw = _distinct(_texel_keys(trace.texture_id, trace.level, trace.tu_raw, trace.tv_raw))
    return raw / wrapped if wrapped else 1.0


def texture_runlengths(trace: TexelTrace) -> np.ndarray:
    """Lengths of maximal runs of consecutive same-texture accesses."""
    if trace.n_accesses == 0:
        return np.empty(0, dtype=np.int64)
    ids = trace.texture_id
    boundaries = np.nonzero(ids[1:] != ids[:-1])[0] + 1
    edges = np.concatenate([[0], boundaries, [len(ids)]])
    return np.diff(edges)


def mean_texture_runlength(trace: TexelTrace) -> float:
    """Average same-texture runlength (paper Section 5.2.3: 223 K-562 K
    for the multi-texture scenes at full scale)."""
    runs = texture_runlengths(trace)
    return float(runs.mean()) if len(runs) else 0.0


def level_histogram(trace: TexelTrace) -> np.ndarray:
    """Access counts per mip level (shows level-of-detail spread)."""
    if trace.n_accesses == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(trace.level.astype(np.int64))

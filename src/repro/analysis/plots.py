"""Terminal line charts for the paper's figures.

The paper's results are line charts (miss rate versus cache size, tile
size, line size...).  :func:`ascii_chart` renders multi-series charts
in plain text so benchmark harnesses and examples can show the *shape*
of each reproduced figure directly in the terminal and in the archived
``benchmarks/results/`` files.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

#: Glyphs assigned to series in order.
SERIES_GLYPHS = "ox*+#@%&"


def _transform(values, log: bool):
    if log:
        return [math.log10(max(v, 1e-12)) for v in values]
    return list(values)


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1024 and abs(value) % 1024 == 0:
        return f"{int(value) // 1024}K"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.3g}"
    return f"{value:.2g}"


def ascii_chart(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    log_x: bool = True,
    log_y: bool = True,
    x_label: str = "x",
    y_label: str = "y",
    title: str = None,
) -> str:
    """Render ``{name: (xs, ys)}`` as a text line chart.

    Marker glyphs are assigned per series in insertion order; points
    that land on the same cell show the later series' glyph.  Axes are
    log-scaled by default (the paper's figures use log cache-size
    axes and near-log miss-rate spreads).
    """
    if not series:
        raise ValueError("need at least one series")
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r} has mismatched x/y lengths")
        if len(xs) == 0:
            raise ValueError(f"series {name!r} is empty")
    if width < 16 or height < 4:
        raise ValueError("chart too small")

    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    tx = _transform(all_x, log_x)
    ty = _transform(all_y, log_y)
    x_min, x_max = min(tx), max(tx)
    y_min, y_max = min(ty), max(ty)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        txs = _transform(xs, log_x)
        tys = _transform(ys, log_y)
        previous = None
        for px, py in zip(txs, tys):
            col = round((px - x_min) / x_span * (width - 1))
            row = height - 1 - round((py - y_min) / y_span * (height - 1))
            if previous is not None:
                _draw_segment(grid, previous, (row, col), glyph)
            grid[row][col] = glyph
            previous = (row, col)

    lines = []
    if title:
        lines.append(title)
    top_tick = _format_tick(max(all_y))
    bottom_tick = _format_tick(min(all_y))
    margin = max(len(top_tick), len(bottom_tick), len(y_label)) + 1
    lines.append(f"{y_label.rjust(margin)}")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_tick.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_tick.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    left_tick = _format_tick(min(all_x))
    right_tick = _format_tick(max(all_x))
    axis = left_tick.ljust(width - len(right_tick)) + right_tick
    lines.append(" " * (margin + 1) + axis + f"  ({x_label})")
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


def _draw_segment(grid, start, end, glyph) -> None:
    """Sparse interpolation between consecutive points with '.' dots."""
    row0, col0 = start
    row1, col1 = end
    steps = max(abs(row1 - row0), abs(col1 - col0))
    for step in range(1, steps):
        row = round(row0 + (row1 - row0) * step / steps)
        col = round(col0 + (col1 - col0) * step / steps)
        if grid[row][col] == " ":
            grid[row][col] = "."


def miss_rate_chart(curves: dict, title: str = None, width: int = 64,
                    height: int = 16) -> str:
    """Chart :class:`~repro.core.stackdist.MissRateCurve` objects, the
    shape of the paper's miss-rate figures (percent on a log axis)."""
    series = {
        name: (curve.sizes.tolist(),
               [100 * rate for rate in curve.miss_rates.tolist()])
        for name, curve in curves.items()
    }
    return ascii_chart(series, width=width, height=height,
                       x_label="cache bytes", y_label="miss %", title=title)

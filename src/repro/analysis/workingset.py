"""Working-set analysis (paper Section 5.2.3).

"In a graph of miss rate versus cache size, the different levels of the
working set hierarchy can be seen as plateaus followed by sharp
reductions in miss rate at particular cache sizes."  We detect the
*first significant working set* as the cache size after the largest
relative drop in the measured miss-rate curve, and provide the paper's
worst-case working-set bound for sanity checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.stackdist import MissRateCurve


@dataclass
class WorkingSet:
    """The detected first significant working set."""

    size: int
    miss_rate_before: float
    miss_rate_after: float

    @property
    def drop_ratio(self) -> float:
        if self.miss_rate_after == 0.0:
            return float("inf")
        return self.miss_rate_before / self.miss_rate_after


def first_working_set(curve: MissRateCurve, min_drop: float = 1.3) -> WorkingSet:
    """Find the first significant knee of a miss-rate curve.

    Scans cache sizes in increasing order and returns the first size
    whose miss rate improves on the previous size by at least
    ``min_drop``x and lands within 2x of the curve's floor -- i.e. the
    smallest cache that has captured the dominant working set.  Falls
    back to the largest relative drop when no size qualifies.
    """
    sizes = curve.sizes
    rates = np.maximum(curve.miss_rates, 1e-12)
    floor = rates.min()
    best_index = None
    best_drop = 0.0
    for index in range(1, len(sizes)):
        drop = rates[index - 1] / rates[index]
        if drop >= min_drop and rates[index] <= 2.0 * floor:
            best_index = index
            break
        if drop > best_drop:
            best_drop = drop
            best_index = index
    if best_index is None:
        best_index = len(sizes) - 1
    return WorkingSet(
        size=int(sizes[best_index]),
        miss_rate_before=float(rates[best_index - 1]) if best_index else float(rates[0]),
        miss_rate_after=float(rates[best_index]),
    )


def worst_case_working_set(
    line_size: int,
    texture_width: int,
    texture_height: int,
    screen_width: int,
    screen_height: int,
) -> int:
    """The paper's worst-case bound on the first working set.

    If the texture is smaller than the screen, the bound is the line
    size times the texture diagonal (the longest path through a
    wrapped texture at arbitrary orientation); otherwise it is the line
    size times the larger screen dimension (a full scan line).
    """
    if texture_width < screen_width or texture_height < screen_height:
        diagonal = int(np.ceil(np.hypot(texture_width, texture_height)))
        return line_size * diagonal
    return line_size * max(screen_width, screen_height)

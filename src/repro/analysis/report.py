"""Plain-text table formatting used by every benchmark harness.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the output aligned and diffable.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = None) -> str:
    """Render an aligned fixed-width table."""
    rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) < 0.01:
            return f"{value:.4f}"
        if abs(value) < 10:
            return f"{value:.2f}"
        return f"{value:.1f}"
    return str(value)


def format_percent(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def format_series(label: str, xs, ys, x_name: str = "x", y_name: str = "y") -> str:
    """Render one curve as the series a figure would plot."""
    pairs = "  ".join(f"{_cell(x)}:{_cell(y)}" for x, y in zip(xs, ys))
    return f"{label} [{x_name} -> {y_name}]  {pairs}"

"""Trace analytics: locality metrics, working-set detection, report
formatting."""

from .metrics import (
    AccessesPerTexel,
    accesses_per_texel,
    level_histogram,
    mean_texture_runlength,
    repetition_factor,
    texture_runlengths,
)
from .workingset import WorkingSet, first_working_set, worst_case_working_set
from .report import format_percent, format_series, format_table
from .plots import ascii_chart, miss_rate_chart

__all__ = [
    "AccessesPerTexel",
    "accesses_per_texel",
    "repetition_factor",
    "texture_runlengths",
    "mean_texture_runlength",
    "level_histogram",
    "WorkingSet",
    "first_working_set",
    "worst_case_working_set",
    "format_table",
    "format_percent",
    "format_series",
    "ascii_chart",
    "miss_rate_chart",
]

"""Section 3.2: why caches get more out of the DRAM.

"Another reason for adding an SRAM cache is that block transfers of
cache lines between the cache and memory make it possible to get the
most bandwidth out of the memory."

This harness feeds a page-mode DRAM model with (a) the uncached
system's raw texel stream (one 4-byte access per fetch) and (b) the
cached system's miss stream (one line burst per miss) for the same
frame, and compares delivered bandwidth and bus utilization -- the
paper's hit-rate-independent argument for caching.
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import CacheConfig, miss_stream
from repro.core.dram import PAPER_DRAM

SCENES = {"town": ("vertical",), "flight": ("horizontal",)}
LAYOUT = ("padded", 4, 4)
LINES = (32, 128)
SAMPLE = 200000  # bound the stream length


def miss_addresses(addresses, config):
    """Byte addresses of the lines fetched by the cache, in order."""
    return miss_stream(addresses, config) * config.line_size


def measure(bank):
    out = {}
    for scene, order in SCENES.items():
        addresses = bank.trace(scene, order).byte_addresses(
            bank.placements(scene, LAYOUT))[:SAMPLE]
        # One cycle walk per stream; bandwidth/utilization come off the
        # same DramTiming instead of re-walking.
        uncached = PAPER_DRAM.timing(addresses, 4)
        rows = {"uncached": (uncached.total_bytes, uncached.cycles,
                             uncached.effective_bandwidth(),
                             uncached.bus_utilization)}
        for line in LINES:
            config = CacheConfig(scaled_cache(32 * 1024), line, 2)
            fills = miss_addresses(addresses, config)
            timing = PAPER_DRAM.timing(fills, line)
            rows[f"{line}B fills"] = (
                timing.total_bytes, timing.cycles,
                timing.effective_bandwidth(), timing.bus_utilization,
            )
        out[scene] = rows
    return out


def test_dram(benchmark, bank):
    out = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = []
    for scene, entries in out.items():
        for label, (total_bytes, cycles, bandwidth, utilization) in entries.items():
            rows.append([
                scene, label, f"{total_bytes / 1024:.0f} KB",
                f"{cycles / 1000:.0f} Kcycles",
                f"{bandwidth / 2**20:.0f} MB/s",
                f"{100 * utilization:.0f}%",
            ])
    text = format_table(
        ["scene", "traffic", "bytes moved", "DRAM time", "delivered BW",
         "bus utilization"],
        rows,
        title=(f"Page-mode DRAM ({PAPER_DRAM.n_banks} banks, "
               f"{kb(PAPER_DRAM.row_nbytes)} rows) serving the same frame:"),
    )
    text += ("\n\nTwo effects stack: the cache moves far fewer bytes (hits) "
             "AND moves them in bursts the DRAM can stream, so DRAM busy "
             "time drops by well over an order of magnitude.")
    emit("dram", text)

    for scene, entries in out.items():
        uncached = entries["uncached"]
        for line in LINES:
            cached = entries[f"{line}B fills"]
            # DRAM busy time collapses (flight's higher miss rate at
            # reduced scale still leaves a ~5x gain at 128B lines)...
            assert cached[1] < uncached[1] / 4, (scene, line)
            # ...and per-byte efficiency (utilization) improves.
            assert cached[3] > uncached[3], (scene, line)

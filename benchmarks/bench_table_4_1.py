"""Table 4.1: benchmark scene characteristics.

Measures, for each procedural scene, the properties the paper
tabulates for the originals, and prints them side by side so deviations
of the stand-in scenes are visible.  Absolute values shrink with
REPRO_SCALE (resolution and texture dimensions scale together); the
paper's values correspond to scale 1.0.
"""

from paperbench import SCALE, emit

from repro.analysis import format_table
from repro.scenes import ALL_SCENES
from repro.scenes.stats import characterize

#: Table 4.1 as published (scale 1.0).
PAPER = {
    "flight": dict(resolution="1280x1024", triangles=9152, area=294, width=38,
                   height=20, textures=15, storage_mb=56.0, used_mb=6.3,
                   used_pct=11, pixels_m=1.4),
    "town": dict(resolution="1280x1024", triangles=5317, area=1149, width=67,
                 height=23, textures=51, storage_mb=4.7, used_mb=1.8,
                 used_pct=38, pixels_m=2.1),
    "guitar": dict(resolution="800x800", triangles=719, area=1867, width=72,
                   height=94, textures=8, storage_mb=4.9, used_mb=1.1,
                   used_pct=23, pixels_m=0.7),
    "goblet": dict(resolution="800x800", triangles=7200, area=41, width=25,
                   height=14, textures=1, storage_mb=1.4, used_mb=0.78,
                   used_pct=56, pixels_m=0.3),
}


def measure(bank):
    rows = []
    for name in ALL_SCENES:
        scene = bank.scene(name)
        result = bank.render(name, bank.paper_order_spec(name))
        rows.append(characterize(scene, result))
    return rows


def test_table_4_1(benchmark, bank):
    measured = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = []
    for chars in measured:
        paper = PAPER[chars.name]
        rows.append([
            chars.name,
            f"{chars.width}x{chars.height}",
            f"{chars.n_triangles} ({paper['triangles']})",
            f"{chars.avg_triangle_area:.0f} ({paper['area']})",
            f"{chars.n_textures} ({paper['textures']})",
            f"{chars.texture_storage_mb:.2f} ({paper['storage_mb']})",
            f"{chars.texture_used_mb:.2f} ({paper['used_mb']})",
            f"{100 * chars.texture_used_fraction:.0f}% ({paper['used_pct']}%)",
            f"{chars.pixels_textured_millions:.2f} ({paper['pixels_m']})",
        ])
    text = format_table(
        ["scene", "resolution", "triangles", "avg area px", "textures",
         "storage MB", "used MB", "used %", "Mpixels textured"],
        rows,
        title=(f"measured (paper @ scale 1.0 in parentheses); linear scale "
               f"{SCALE} => areas/storage shrink ~{SCALE ** 2:.3f}x"),
    )
    emit("table_4_1", text)

    # Structural guards: texture counts match the paper exactly; the
    # triangle-size ordering matches (goblet smallest, guitar largest).
    by_name = {c.name: c for c in measured}
    for name, paper in PAPER.items():
        assert by_name[name].n_textures == paper["textures"]
    areas = {name: c.avg_triangle_area for name, c in by_name.items()}
    assert areas["goblet"] == min(areas.values())
    assert areas["guitar"] == max(areas.values())
    for chars in measured:
        assert 0.0 < chars.texture_used_fraction <= 1.0

"""Warm-grid serving latency: tiered store versus per-load re-verify.

Times ``Engine.run`` over a warm artifact store (every trace, address
stream and profile already on disk) two ways per scene:

* ``ms_before`` -- the seed's serving discipline, emulated by env
  knobs: in-memory tier off (``REPRO_STORE_MEMORY=0``), full SHA-256
  re-verification on every load (``REPRO_STORE_VERIFY=always``) and no
  memory-mapped payloads (``REPRO_STORE_MMAP=0``); a fresh
  :class:`~repro.engine.Engine` per run, so every artifact is re-read
  and re-hashed from disk each time.
* ``ms_after`` -- the tiered defaults: the process-wide T0 LRU serves
  deserialized artifacts, the verify-once digest cache turns
  re-verification into a ``stat``, and monolithic ``.npy`` payloads
  arrive as read-only memory maps.

Before anything is timed the grid's result rows (miss-rate curves and
3C classifications) are verified **bit-identical** across every tier
configuration: seed emulation, tiered defaults, T0 off, mmap on/off
(profiles recomputed from memory-mapped address streams), and a cold
local store reading through a populated remote tier
(``REPRO_STORE_REMOTE``) with zero renders.  Results land in
``BENCH_store.json`` at the repository root with schema ``{bench,
config, ms_before, ms_after, speedup}`` matching the other BENCH
artifacts.

Run directly (``python benchmarks/bench_store.py``) or through the
benchmark suite; ``--smoke`` just checks cross-tier equivalence at the
current ``REPRO_SCALE`` and skips the JSON (CI runs it at tiny scale).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from paperbench import SCALE  # noqa: E402

from repro.engine import (  # noqa: E402
    ArtifactStore,
    Engine,
    ExperimentSpec,
    render_calls,
)
from repro.engine import tiers  # noqa: E402

SCENES = ("flight", "goblet", "guitar", "town")
LAYOUTS = (("blocked", 8),)
LINE_SIZES = (32, 64, 128)
ASSOCS = (None, 4)

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_store.json"

#: Env knobs the bench flips; everything else is left alone.
_TIER_KEYS = ("REPRO_STORE_MEMORY", "REPRO_STORE_MEMORY_BYTES",
              "REPRO_STORE_VERIFY", "REPRO_STORE_MMAP",
              "REPRO_STORE_REMOTE")

#: The seed's discipline: no memory tier, hash every load, no mmap.
SEED_ENV = {"REPRO_STORE_MEMORY": "0", "REPRO_STORE_VERIFY": "always",
            "REPRO_STORE_MMAP": "0"}


def grid_spec(scene: str) -> ExperimentSpec:
    return ExperimentSpec(scenes=(scene,), layouts=LAYOUTS,
                          line_sizes=LINE_SIZES, assocs=ASSOCS,
                          scale=SCALE)


@contextmanager
def tier_env(**overrides):
    """Run with exactly the given tier knobs set (all others unset),
    starting and ending with empty process caches."""
    saved = {key: os.environ.get(key) for key in _TIER_KEYS}
    for key in _TIER_KEYS:
        os.environ.pop(key, None)
    for key, value in overrides.items():
        os.environ[key] = value
    tiers.clear_process_caches()
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        tiers.clear_process_caches()


def run_grid(root, scene: str):
    """One full grid over ``root`` on a fresh Engine (no in-instance
    memo reuse: everything is served by the store tiers)."""
    return Engine(store=ArtifactStore(root)).run(grid_spec(scene))


def rows_key(result) -> tuple:
    """The grid's outcome as a comparable value: every curve point and
    3C split of every cell, order-independent."""
    def cell(row):
        stats = row.stats
        return (row.scene, tuple(row.order), tuple(row.layout),
                row.config.size, row.config.line_size,
                -1 if row.config.assoc is None else row.config.assoc,
                stats.accesses, stats.misses, stats.cold_misses,
                -1 if stats.capacity_misses is None
                else stats.capacity_misses,
                -1 if stats.conflict_misses is None
                else stats.conflict_misses)
    return tuple(sorted(cell(row) for row in result.rows))


def _copy_store(source: Path, target: Path, drop=()) -> Path:
    shutil.copytree(source, target)
    for kind in drop:
        shutil.rmtree(target / kind, ignore_errors=True)
    return target


def verify_equivalence(scene: str, work: Path) -> int:
    """Assert the grid is bit-identical under every tier
    configuration.  Returns the number of configurations checked."""
    full = work / f"{scene}-full"
    remote = work / f"{scene}-remote"
    with tier_env(REPRO_STORE_REMOTE=str(remote)):
        run_grid(full, scene)  # warm + publish to the remote tier

    with tier_env(**SEED_ENV):
        baseline = rows_key(run_grid(full, scene))

    trials = {
        "tiered defaults": (full, {}),
        "T0 off": (full, {"REPRO_STORE_MEMORY": "0"}),
        # Profiles dropped: recomputed from (mmap'd or not) addresses.
        "mmap on, profiles recomputed": (_copy_store(
            full, work / f"{scene}-mmap1",
            drop=("profiles", "set_profiles")), {}),
        "mmap off, profiles recomputed": (_copy_store(
            full, work / f"{scene}-mmap0",
            drop=("profiles", "set_profiles")),
            {"REPRO_STORE_MMAP": "0"}),
    }
    for label, (root, env) in trials.items():
        with tier_env(**env):
            if rows_key(run_grid(root, scene)) != baseline:
                raise AssertionError(f"{scene}: rows diverge ({label})")

    # Remote read-through: a cold local store must serve the whole
    # grid from the remote tier without a single render.
    with tier_env(REPRO_STORE_REMOTE=str(remote)):
        before = render_calls()
        cold = rows_key(run_grid(work / f"{scene}-cold", scene))
        if render_calls() != before:
            raise AssertionError(f"{scene}: remote read-through rendered")
        if cold != baseline:
            raise AssertionError(f"{scene}: rows diverge (remote tier)")
    return len(trials) + 2


def _timed(run) -> float:
    start = time.perf_counter()
    run()
    return 1000 * (time.perf_counter() - start)


def measure(work: Path, repeats: int = 3) -> dict:
    per_scene = {}
    totals = {"before": 0.0, "after": 0.0}
    scenes_over_3x = 0
    for scene in SCENES:
        configs = verify_equivalence(scene, work)
        root = work / f"{scene}-full"

        with tier_env(**SEED_ENV):
            ms_before = min(_timed(lambda: run_grid(root, scene))
                            for _ in range(repeats))
        with tier_env():
            run_grid(root, scene)  # fill T0 once, untimed
            ms_after = min(_timed(lambda: run_grid(root, scene))
                           for _ in range(repeats))
            memory = tiers.memory_tier().stats()
            digests = tiers.digest_cache().stats()

        speedup = ms_before / max(ms_after, 1e-9)
        scenes_over_3x += speedup >= 3.0
        n_cells = grid_spec(scene).n_cells
        per_scene[scene] = {
            "n_cells": n_cells,
            "equivalence_configs": configs,
            "ms_seed": round(ms_before, 3),
            "ms_tiered": round(ms_after, 3),
            "speedup": round(speedup, 2),
            "t0_hit_rate": round(memory["hit_rate"], 4),
            "digest_hit_rate": round(digests["hit_rate"], 4),
        }
        totals["before"] += ms_before
        totals["after"] += ms_after
    return {
        "bench": "store_tiers",
        "config": {
            "scale": SCALE,
            "scenes": list(SCENES),
            "layouts": [list(layout) for layout in LAYOUTS],
            "line_sizes": list(LINE_SIZES),
            "assocs": [a if a is not None else "full" for a in ASSOCS],
            "repeats": repeats,
            "estimator": "min of consecutive warm grid runs per mode",
            "seed_mode": dict(SEED_ENV),
            "equivalence": "bit-identical rows (curves + 3C) across "
                           "seed, tiered, T0 off, mmap on/off, remote",
            "scenes_at_3x_or_better": int(scenes_over_3x),
            "per_scene": per_scene,
        },
        "ms_before": round(totals["before"], 3),
        "ms_after": round(totals["after"], 3),
        "speedup": round(totals["before"] / max(totals["after"], 1e-9), 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="cross-tier equivalence check only, no "
                             "BENCH_store.json")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed warm grid runs per scene per mode")
    args = parser.parse_args(argv)

    work = Path(tempfile.mkdtemp(prefix="bench-store-"))
    try:
        if args.smoke:
            for scene in SCENES:
                configs = verify_equivalence(scene, work)
                print(f"{scene}: identical rows across {configs} tier "
                      "configurations (incl. zero-render remote "
                      "read-through)")
            print(f"smoke OK: bit-identical grids on {len(SCENES)} "
                  f"scenes at scale {SCALE}")
            return 0

        report = measure(work, repeats=args.repeats)
    finally:
        shutil.rmtree(work, ignore_errors=True)

    for scene, row in report["config"]["per_scene"].items():
        print(f"{scene:8s} seed {row['ms_seed']:8.1f} ms   "
              f"tiered {row['ms_tiered']:8.1f} ms   "
              f"{row['speedup']:6.2f}x   "
              f"(T0 hit rate {row['t0_hit_rate']:.0%}, "
              f"{row['n_cells']} cells)")
    print(f"total: {report['ms_before']:.1f} ms -> "
          f"{report['ms_after']:.1f} ms ({report['speedup']:.2f}x; "
          f"{report['config']['scenes_at_3x_or_better']}/{len(SCENES)} "
          "scenes at >= 3x)")
    RESULT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {RESULT_PATH}")
    return 0


def test_store_tiers(bank):
    """Benchmark-suite entry: full measurement plus the JSON artifact."""
    work = Path(tempfile.mkdtemp(prefix="bench-store-"))
    try:
        report = measure(work)
    finally:
        shutil.rmtree(work, ignore_errors=True)
    RESULT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    assert report["speedup"] > 1.0


if __name__ == "__main__":
    sys.exit(main())

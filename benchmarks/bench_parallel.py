"""Section 8's open question: parallel texture caching.

"One of the interesting questions that must be addressed in this area
is how to balance the work among multiple fragment generators without
reducing the spatial locality in each reference stream."

This harness splits the Town frame across 1-8 fragment generators
(each with its own private cache over a shared texture memory) under
three work distributions -- scanline interleave, tile interleave, and
contiguous strips -- and reports the trade-off: finer interleaving
balances load but fragments locality (higher per-stream miss rates and
redundant fetches of the same lines by multiple generators).
"""

from paperbench import emit, kb, scaled_cache

from repro.core import CacheConfig
from repro.core.parallel import (
    ScanlineInterleave,
    StripSplit,
    TileInterleave,
    simulate_parallel,
)
from repro.analysis import format_table

SCENE = "town"
LAYOUT = ("padded", 4, 4)
LINE = 64
GENERATORS = (1, 2, 4, 8)


def distributions(n, height):
    return [
        ScanlineInterleave(n),
        TileInterleave(n, tile=8),
        TileInterleave(n, tile=32),
        StripSplit(n, height=height),
    ]


def measure(bank):
    scene = bank.scene(SCENE)
    # Position-annotated trace (the default cached traces lack x/y).
    trace = bank.trace(SCENE, ("tiled", 8), record_positions=True)
    placements = bank.placements(SCENE, LAYOUT)
    config = CacheConfig(scaled_cache(16 * 1024), LINE, 2)
    results = {}
    for n in GENERATORS:
        for dist in distributions(n, scene.height):
            results[(n, dist.name)] = simulate_parallel(
                trace, placements, dist, config)
    return results


def test_parallel(benchmark, bank):
    results = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = []
    for (n, name), stats in results.items():
        rows.append([
            n, name,
            f"{100 * stats.aggregate_miss_rate:.3f}%",
            f"{stats.redundancy:.2f}",
            f"{stats.load_imbalance:.2f}",
            f"{stats.shared_memory_bandwidth() / 2**20:.0f} MB/s",
        ])
    text = format_table(
        ["generators", "distribution", "aggregate miss", "redundancy",
         "load imbalance", "shared-memory BW"],
        rows,
        title=(f"{SCENE}, private {kb(scaled_cache(16 * 1024))} 2-way caches "
               f"per generator, {LINE}B lines, shared texture memory "
               "(each generator at 50M fragments/s):"),
    )
    text += ("\n\nThe Section 8 trade-off: scanline interleave balances "
             "perfectly but each generator re-fetches nearly the whole "
             "working set (high redundancy); strips preserve locality but "
             "balance at the scene's mercy; medium tiles sit between.")
    emit("parallel", text)

    for n in GENERATORS[1:]:
        scanline = results[(n, "scanline-interleave")]
        strips = results[(n, "strip-split")]
        tiles = results[(n, "tile32-interleave")]
        # Locality: strips fetch least redundantly; scanlines most.
        assert strips.redundancy <= tiles.redundancy + 0.05
        assert tiles.redundancy <= scanline.redundancy + 0.05
        # Balance: scanlines near-perfect, strips worst.
        assert scanline.load_imbalance <= strips.load_imbalance + 0.05
    # One generator reduces to the serial system regardless of scheme.
    single = results[(1, "scanline-interleave")]
    assert single.redundancy == 1.0
    assert single.load_imbalance == 1.0

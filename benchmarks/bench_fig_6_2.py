"""Figure 6.2: effect of tiled rasterization on the working set.

Guitar scene, blocked 8x8 texture representation, 128-byte lines,
fully associative caches, sweeping screen tile sizes from tiny to huge
(the nontiled scan-line order is the limit in both directions).

Paper finding: medium tiles cut capacity misses at cache sizes that
previously did not fit the working set; tiny tiles converge to the
nontiled access pattern and huge tiles make the working set exceed the
cache again.  Goblet (small triangles) is shown as the
tile-insensitive contrast.
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table, miss_rate_chart
from repro.core import miss_rate_curve

CACHE_SIZES = sorted({scaled_cache(1024 * k) for k in (2, 4, 8, 16, 32)})
LINE = 128
LAYOUT = ("blocked", 8)
TILES = (None, 2, 4, 8, 16, 32, 64, 128)  # None = nontiled horizontal


def order_spec(tile):
    return ("horizontal",) if tile is None else ("tiled", tile)


def measure(bank):
    curves = {}
    for scene in ("guitar", "goblet"):
        for tile in TILES:
            streams = bank.streams(scene, order_spec(tile), LAYOUT)
            curves[(scene, tile)] = miss_rate_curve(
                streams.stream(LINE), LINE, CACHE_SIZES)
    return curves


def test_fig_6_2(benchmark, bank):
    curves = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    sections = []
    for scene in ("guitar", "goblet"):
        rows = []
        for tile in TILES:
            name = "nontiled" if tile is None else f"{tile}x{tile}"
            rows.append([name] + [
                f"{100 * r:.2f}%" for r in curves[(scene, tile)].miss_rates])
        sections.append(format_table(
            ["tile"] + [kb(s) for s in CACHE_SIZES], rows,
            title=f"{scene}, blocked 8x8, {LINE}B lines, fully associative:",
        ))
    text = "\n\n".join(sections)
    text += "\n\n" + miss_rate_chart(
        {("nontiled" if t is None else f"{t}x{t}"): curves[("guitar", t)]
         for t in (None, 8, 128)},
        title="Figure 6.2 shape (guitar): nontiled vs medium vs huge tiles")
    text += ("\n\nPaper: medium tiles shrink the Guitar working set; very "
             "small and very large tiles converge to nontiled; Goblet "
             "(small triangles) is unaffected by tile size.")
    emit("fig_6_2", text)

    # Guitar: some medium tile clearly beats nontiled at a
    # sub-working-set cache size; huge tiles drift back up.
    for size_index in (1,):
        nontiled = curves[("guitar", None)].miss_rates[size_index]
        best_medium = min(curves[("guitar", t)].miss_rates[size_index]
                          for t in (4, 8, 16))
        huge = curves[("guitar", 128)].miss_rates[size_index]
        assert best_medium < 0.75 * nontiled
        assert huge > best_medium
    # Goblet: spread across tile sizes stays small.
    for size_index in range(len(CACHE_SIZES)):
        values = [curves[("goblet", t)].miss_rates[size_index] for t in TILES]
        assert max(values) < 1.4 * min(values) + 1e-9

"""Figure 5.4: interaction between block size and cache line size.

Town (vertical) and Guitar (horizontal), fully associative cache of the
paper's 32 KB (scaled), sweeping line sizes against block sizes.

Paper finding: the lowest miss rate occurs when the block's memory
footprint most closely matches the cache line size (square cache lines
exploit spatial locality best); badly mismatched blocks inflate the
working set and cause capacity misses.
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import miss_rate_curve
from repro.texture.image import TEXEL_NBYTES

CACHE = scaled_cache(32 * 1024)
LINE_SIZES = (32, 64, 128, 256)
BLOCKS = (1, 2, 4, 8, 16)  # 1 = nonblocked

SCENES = {"town": ("vertical",), "guitar": ("horizontal",)}


def layout_spec(block):
    return ("nonblocked",) if block == 1 else ("blocked", block)


def measure(bank):
    rates = {}
    for name, order in SCENES.items():
        for block in BLOCKS:
            streams = bank.streams(name, order, layout_spec(block))
            for line in LINE_SIZES:
                curve = miss_rate_curve(streams.stream(line), line, [CACHE])
                rates[(name, block, line)] = curve.miss_rates[0]
    return rates


def test_fig_5_4(benchmark, bank):
    rates = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    sections = []
    for name, order in SCENES.items():
        rows = []
        for block in BLOCKS:
            label = "nonblocked" if block == 1 else f"{block}x{block}"
            block_bytes = block * block * TEXEL_NBYTES
            rows.append(
                [label, kb(block_bytes)]
                + [f"{100 * rates[(name, block, line)]:.3f}%" for line in LINE_SIZES]
            )
        sections.append(format_table(
            ["block", "block bytes"] + [f"{line}B line" for line in LINE_SIZES],
            rows,
            title=f"{name} ({order[0]}), fully associative {kb(CACHE)} cache:",
        ))
    text = "\n\n".join(sections)
    text += ("\n\nPaper: the best block size matches the cache line size "
             "(e.g. 4x4 = 64 B blocks for 64 B lines).")
    emit("fig_5_4", text)

    # Shape guard: for each line size, the matched block beats a badly
    # mismatched one on the orientation-sensitive Town scene.
    matched = {32: 2, 64: 4, 128: 4, 256: 8}  # closest square block <= line
    for line, block in matched.items():
        mismatched = 16 if block <= 4 else 1
        assert rates[("town", block, line)] <= \
            rates[("town", mismatched, line)] * 1.05, (line, block)

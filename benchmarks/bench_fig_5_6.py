"""Figure 5.6: the blocked representation below the working-set size.

Guitar scene, fully associative caches across sizes, comparing
line/block combinations including the nonblocked baseline.

Paper finding: blocking coupled with larger lines and blocks cuts
capacity misses for caches *smaller than the working set*; increasing
the line size without blocking makes miss rates worse.
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import miss_rate_curve

CACHE_SIZES = sorted({scaled_cache(1024 * k) for k in (2, 4, 8, 16, 32, 64)})

#: (label, line size, layout spec) series, mirroring the figure's lines.
SERIES = [
    ("32B nonblocked", 32, ("nonblocked",)),
    ("128B nonblocked", 128, ("nonblocked",)),
    ("32B 2x2", 32, ("blocked", 2)),
    ("64B 4x4", 64, ("blocked", 4)),
    ("128B 4x4", 128, ("blocked", 4)),
    ("128B 8x8", 128, ("blocked", 8)),
]

ORDER = ("horizontal",)


def measure(bank):
    curves = {}
    for label, line, layout in SERIES:
        streams = bank.streams("guitar", ORDER, layout)
        curves[label] = miss_rate_curve(streams.stream(line), line, CACHE_SIZES)
    return curves


def test_fig_5_6(benchmark, bank):
    curves = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = [
        [label] + [f"{100 * r:.2f}%" for r in curves[label].miss_rates]
        for label, _, _ in SERIES
    ]
    text = format_table(
        ["line/block"] + [kb(s) for s in CACHE_SIZES], rows,
        title="Guitar, fully associative caches:",
    )
    text += ("\n\nPaper: below the working set, blocking + larger lines "
             "reduce capacity misses; larger lines *without* blocking "
             "make things worse.")
    emit("fig_5_6", text)

    small = CACHE_SIZES[0]
    index = 0
    # Larger lines without blocking hurt at small cache sizes...
    assert curves["128B nonblocked"].miss_rates[index] > \
        curves["32B nonblocked"].miss_rates[index]
    # ...while the same line size *with* a matched block helps a lot.
    assert curves["128B 8x8"].miss_rates[index] < \
        0.7 * curves["128B nonblocked"].miss_rates[index]
    # At the largest size all series approach their cold floors and the
    # 128B series beat the 32B ones.
    assert curves["128B 8x8"].miss_rates[-1] < curves["32B 2x2"].miss_rates[-1]

"""Ablation: Williams' original Mip Map arrangement (Section 5.1).

The paper dismisses Williams' representation qualitatively: separated
color components conflict in the cache (power-of-two strides), spatial
locality across components is wasted, and each texel needs three
accesses.  This harness quantifies those claims against the base
nonblocked representation on the Town scene.
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import CacheConfig, miss_rate_curve, simulate

CACHE_SIZES = [scaled_cache(1024 * k) for k in (2, 8, 32)]
LINE = 32
ORDER = ("vertical",)
SCENE = "town"


def measure(bank):
    out = {}
    for label, layout in [("nonblocked", ("nonblocked",)),
                          ("williams", ("williams",))]:
        streams = bank.streams(SCENE, ORDER, layout)
        stream = streams.stream(LINE)
        curve = miss_rate_curve(stream, LINE, CACHE_SIZES)
        direct = [simulate(stream, CacheConfig(s, LINE, 1)).miss_rate
                  for s in CACHE_SIZES]
        out[label] = {
            "fa": curve.miss_rates,
            "direct": direct,
            "accesses": stream.total_accesses,
        }
    return out


def test_ablation_williams(benchmark, bank):
    out = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = []
    for label, data in out.items():
        for index, size in enumerate(CACHE_SIZES):
            # Traffic per *texel filtered* = miss rate x accesses/texel
            # x line size; Williams makes three accesses per texel.
            per_texel = 3 if label == "williams" else 1
            traffic = data["direct"][index] * per_texel * LINE
            rows.append([
                label, kb(size),
                f"{100 * data['fa'][index]:.3f}%",
                f"{100 * data['direct'][index]:.3f}%",
                f"{traffic:.2f} B/texel",
            ])
    text = format_table(
        ["layout", "cache", "fully assoc miss", "direct-mapped miss",
         "direct traffic/texel"],
        rows,
        title=f"{SCENE} (vertical), {LINE}B lines:",
    )
    text += ("\n\nWilliams makes 3 accesses/texel at power-of-two component "
             "strides: even where miss rates look comparable, per-texel "
             "traffic is ~3x, and direct-mapped conflicts are worse.")
    emit("ablation_williams", text)

    nb = out["nonblocked"]
    wl = out["williams"]
    # Three accesses per texel.
    assert wl["accesses"] == 3 * nb["accesses"]
    # Direct-mapped traffic per filtered texel is strictly worse for
    # Williams at every size.
    for index in range(len(CACHE_SIZES)):
        assert wl["direct"][index] * 3 * LINE > nb["direct"][index] * LINE

"""Methodology validation: the REPRO_SCALE model.

DESIGN.md claims that scaling scene resolution, texture dimensions and
tessellation together preserves the *shape* of every curve while
shifting working sets linearly with the scale factor.  This harness
tests that claim directly: it renders the Town scene at two scales an
octave apart and checks that (i) the nonblocked/vertical working-set
knee moves by ~the scale ratio and (ii) the miss-rate curves collapse
onto each other when cache sizes are divided by the scale.
"""

import numpy as np

from paperbench import SCALE, emit

from repro.analysis import first_working_set, format_table, miss_rate_chart
from repro.core import miss_rate_curve
from repro.engine import TraceSpec

SIZES_PER_SCALE = {
    1.0: [1024 * k for k in (1, 2, 4, 8, 16, 32, 64)],
}


def curve_at(bank, scale):
    spec = TraceSpec(scene="town", scale=scale, order=("vertical",))
    streams = bank.engine.streams(spec, ("nonblocked",))
    sizes = [max(int(1024 * k * scale), 256) for k in (1, 2, 4, 8, 16, 32, 64)]
    return miss_rate_curve(streams, 32, sorted(set(sizes)))


def measure(bank):
    small_scale = SCALE
    large_scale = min(SCALE * 2, 1.0)
    return {
        small_scale: curve_at(bank, small_scale),
        large_scale: curve_at(bank, large_scale),
    }


def test_scaling(benchmark, bank):
    curves = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)
    (small_scale, small), (large_scale, large) = sorted(curves.items())

    rows = []
    for scale, curve in sorted(curves.items()):
        ws = first_working_set(curve)
        rows.append([
            scale,
            " ".join(
                (f"{int(s) // 1024}K" if s >= 1024 else f"{int(s)}B")
                + f":{100 * r:.2f}%"
                for s, r in zip(curve.sizes, curve.miss_rates)),
            f"{ws.size / 1024:.1f}KB",
        ])
    text = format_table(["scale", "miss curve (cache:miss)", "working set"],
                        rows, title="Town (vertical, nonblocked, 32B lines):")
    text += "\n\n" + miss_rate_chart(
        {f"scale {scale}": curve for scale, curve in sorted(curves.items())},
        title="Curves shift left by the scale ratio (log axes):")
    text += ("\n\nDividing cache sizes by the scale collapses the curves: "
             "the reproduction scale moves working sets linearly, as "
             "DESIGN.md's substitution argument requires.")
    emit("scaling", text)

    # Working set shifts by roughly the scale ratio.
    ws_small = first_working_set(small).size
    ws_large = first_working_set(large).size
    ratio = (large_scale / small_scale)
    assert 0.4 * ratio <= ws_large / ws_small <= 2.5 * ratio
    # Scale-normalized curves collapse: compare at matched size/scale.
    paired = []
    for size_small, rate_small in zip(small.sizes, small.miss_rates):
        matched = size_small * large_scale / small_scale
        index = np.argmin(np.abs(large.sizes - matched))
        if abs(large.sizes[index] - matched) < 1:
            paired.append((rate_small, large.miss_rates[index]))
    assert len(paired) >= 4
    for rate_small, rate_large in paired:
        assert abs(rate_small - rate_large) < 0.6 * max(rate_small, rate_large, 0.005)

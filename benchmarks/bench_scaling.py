"""Methodology validation: the REPRO_SCALE model and streaming scale-up.

Two harnesses share this file:

* ``test_scaling`` (pytest-benchmark) -- DESIGN.md claims that scaling
  scene resolution, texture dimensions and tessellation together
  preserves the *shape* of every curve while shifting working sets
  linearly with the scale factor.  It renders the Town scene at two
  scales an octave apart and checks that (i) the nonblocked/vertical
  working-set knee moves by ~the scale ratio and (ii) the miss-rate
  curves collapse onto each other when cache sizes are divided by the
  scale.

* ``main`` (run directly) -- the streaming pipeline benchmark.  Every
  measurement runs in a fresh subprocess with its own cold artifact
  store so ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` is that
  pipeline's true peak, then the streamed run is verified
  **bit-identical** to the in-RAM baseline (miss-rate curves and 3C
  classifications) before its timing counts.  ``--smoke`` gates the
  equivalence plus a fixed peak-RSS budget at the current
  ``REPRO_SCALE`` (the CI configuration) for both the serial streamed
  fold and the pipelined fold (``stream_workers=2``); the full run
  sweeps chunk sizes plus the sharded (``shards=2``) and pipelined
  modes across scales 0.25/0.5/1.0 on all four scenes and records
  fragments/s and peak RSS in ``BENCH_streaming.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from paperbench import SCALE, emit  # noqa: E402

from repro.analysis import first_working_set, format_table, miss_rate_chart  # noqa: E402
from repro.core import miss_rate_curve  # noqa: E402
from repro.engine import TraceSpec  # noqa: E402

SIZES_PER_SCALE = {
    1.0: [1024 * k for k in (1, 2, 4, 8, 16, 32, 64)],
}

STREAM_SCENES = ("flight", "goblet", "guitar", "town")
STREAM_SCALES = (0.25, 0.5, 1.0)
CHUNK_SIZES = (1 << 18, 1 << 20)
STREAM_LAYOUT = ("blocked", 8)
STREAM_LINE_SIZE = 64

#: Fixed peak-RSS ceiling for the ``--smoke`` gate (MB).  Chosen with
#: headroom over the ~250 MB a streamed scale-0.25 pipeline actually
#: peaks at (interpreter + numpy + scene textures + one chunk); a
#: regression that materializes the trace or address stream at larger
#: scales shows up long before this at scale 1.0, and gross
#: materialization blows past it even at 0.25.
SMOKE_RSS_BUDGET_MB = 768

STREAM_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_streaming.json"


def curve_at(bank, scale):
    spec = TraceSpec(scene="town", scale=scale, order=("vertical",))
    streams = bank.engine.streams(spec, ("nonblocked",))
    sizes = [max(int(1024 * k * scale), 256) for k in (1, 2, 4, 8, 16, 32, 64)]
    return miss_rate_curve(streams, 32, sorted(set(sizes)))


def measure(bank):
    small_scale = SCALE
    large_scale = min(SCALE * 2, 1.0)
    return {
        small_scale: curve_at(bank, small_scale),
        large_scale: curve_at(bank, large_scale),
    }


def test_scaling(benchmark, bank):
    curves = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)
    (small_scale, small), (large_scale, large) = sorted(curves.items())

    rows = []
    for scale, curve in sorted(curves.items()):
        ws = first_working_set(curve)
        rows.append([
            scale,
            " ".join(
                (f"{int(s) // 1024}K" if s >= 1024 else f"{int(s)}B")
                + f":{100 * r:.2f}%"
                for s, r in zip(curve.sizes, curve.miss_rates)),
            f"{ws.size / 1024:.1f}KB",
        ])
    text = format_table(["scale", "miss curve (cache:miss)", "working set"],
                        rows, title="Town (vertical, nonblocked, 32B lines):")
    text += "\n\n" + miss_rate_chart(
        {f"scale {scale}": curve for scale, curve in sorted(curves.items())},
        title="Curves shift left by the scale ratio (log axes):")
    text += ("\n\nDividing cache sizes by the scale collapses the curves: "
             "the reproduction scale moves working sets linearly, as "
             "DESIGN.md's substitution argument requires.")
    emit("scaling", text)

    # Working set shifts by roughly the scale ratio.
    ws_small = first_working_set(small).size
    ws_large = first_working_set(large).size
    ratio = (large_scale / small_scale)
    assert 0.4 * ratio <= ws_large / ws_small <= 2.5 * ratio
    # Scale-normalized curves collapse: compare at matched size/scale.
    paired = []
    for size_small, rate_small in zip(small.sizes, small.miss_rates):
        matched = size_small * large_scale / small_scale
        index = np.argmin(np.abs(large.sizes - matched))
        if abs(large.sizes[index] - matched) < 1:
            paired.append((rate_small, large.miss_rates[index]))
    assert len(paired) >= 4
    for rate_small, rate_large in paired:
        assert abs(rate_small - rate_large) < 0.6 * max(rate_small, rate_large, 0.005)


# -- streaming pipeline benchmark ----------------------------------------


def _stream_sizes(scale: float) -> list:
    """Paper cache sizes scaled to the reproduction scale, snapped to
    powers of two (identical in every worker, so curves compare)."""
    return sorted({1 << int(round(np.log2(max(paper * scale, 512))))
                   for paper in (4096, 16384, 65536, 262144)})


def _stream_configs(scale: float) -> list:
    size = 1 << int(round(np.log2(max(16384 * scale, 2048))))
    return [(size, STREAM_LINE_SIZE, assoc) for assoc in (1, 2, 4)]


def _run_pipeline(scene: str, scale: float, mode: str, chunk_size: int,
                  shards: int, stream_workers: int = 0) -> dict:
    """One cold pipeline (render -> profiles -> curve -> 3C) in this
    process; returns everything the parent compares and records."""
    import resource

    from repro.core.cache import CacheConfig
    from repro.core.classify import classify_misses
    from repro.engine import Engine, classify_streamed, paper_order_spec

    spec = TraceSpec(scene=scene, scale=scale, order=paper_order_spec(scene))
    engine = Engine()
    start = time.perf_counter()
    if mode in ("streamed", "sharded", "pipelined"):
        streams = engine.streamed(spec, STREAM_LAYOUT, chunk_size=chunk_size,
                                  shards=shards,
                                  stream_workers=stream_workers)
        # Fold every profile the row needs in one pass over the blocks
        # (classify set profiles + the fully-associative curve/3C
        # profile), the way Engine.run batches a grid's pairs.
        pairs = {(STREAM_LINE_SIZE, 1)}
        pairs.update((STREAM_LINE_SIZE, CacheConfig(*config).n_sets)
                     for config in _stream_configs(scale))
        streams.prefetch(sorted(pairs))
        classify = [classify_streamed(streams,
                                      CacheConfig(*config))
                    for config in _stream_configs(scale)]
    else:
        # Same profile reuse the streamed path gets: one distance pass
        # and one per-set pass per (line size, set count), via the
        # materialized stream.
        streams = engine.streams(spec, STREAM_LAYOUT)
        classify = []
        for config in _stream_configs(scale):
            cfg = CacheConfig(*config)
            classify.append(classify_misses(
                streams.stream(cfg.line_size), cfg,
                profile=streams.profile(cfg.line_size),
                set_profile=streams.set_profile(cfg.line_size, cfg.n_sets)))
    curve = miss_rate_curve(streams, STREAM_LINE_SIZE, _stream_sizes(scale))
    elapsed = time.perf_counter() - start
    reader = engine.store.open_render_blocks(spec)
    if reader is not None:
        n_fragments = reader.n_fragments
    else:
        n_fragments = engine.render(spec).n_fragments
    if mode == "pipelined":
        # Reap the pool first so RUSAGE_CHILDREN covers the workers.
        from repro.engine import shutdown_stream_pool
        shutdown_stream_pool()
    maxrss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    streaming = mode in ("streamed", "sharded", "pipelined")
    return {
        "scene": scene,
        "scale": scale,
        "mode": mode,
        "chunk_size": chunk_size if streaming else None,
        "shards": shards if streaming else 0,
        "stream_workers": stream_workers if streaming else 0,
        "n_accesses": int(classify[0].accesses),
        "n_fragments": int(n_fragments),
        "elapsed_s": round(elapsed, 3),
        "fragments_per_s": round(n_fragments / max(elapsed, 1e-9)),
        "maxrss_mb": round(maxrss_kb / 1024, 1),
        # Largest single-process peak among forked children (stream
        # pool workers, shard folders); 0 when none ran.
        "maxrss_children_mb": round(children_kb / 1024, 1),
        "miss_rates": [float(rate) for rate in curve.miss_rates],
        "classify": [[stats.misses, stats.cold_misses,
                      stats.capacity_misses, stats.conflict_misses]
                     for stats in classify],
    }


def _spawn_worker(scene: str, scale: float, mode: str,
                  chunk_size: int = 0, shards: int = 0,
                  stream_workers: int = 0) -> dict:
    """Run one measurement in a fresh subprocess over a fresh cold
    store, so ``ru_maxrss`` (a per-process high-water mark) is that
    pipeline's own peak and no run warms another."""
    with tempfile.TemporaryDirectory() as cache_dir:
        env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
        src = Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        result = subprocess.run(
            [sys.executable, __file__, "--worker", "--scene", scene,
             "--scale-value", repr(scale), "--mode", mode,
             "--chunk", str(chunk_size), "--shards", str(shards),
             "--stream-workers", str(stream_workers)],
            env=env, capture_output=True, text=True)
    if result.returncode != 0:
        raise RuntimeError(
            f"worker failed for {scene}@{scale} ({mode}):\n{result.stderr}")
    return json.loads(result.stdout.strip().splitlines()[-1])


def _assert_identical(baseline: dict, candidate: dict) -> None:
    label = (f"{candidate['scene']}@{candidate['scale']} "
             f"chunk={candidate['chunk_size']} shards={candidate['shards']}")
    if candidate["miss_rates"] != baseline["miss_rates"]:
        raise AssertionError(f"{label}: miss-rate curve diverges from in-RAM")
    if candidate["classify"] != baseline["classify"]:
        raise AssertionError(f"{label}: 3C classification diverges from in-RAM")
    if candidate["n_accesses"] != baseline["n_accesses"]:
        raise AssertionError(f"{label}: access count diverges from in-RAM")


def streaming_smoke() -> int:
    """CI gate: streamed and pipelined == in-RAM bit for bit on every
    scene at the current ``REPRO_SCALE``, under the fixed peak-RSS
    budget."""
    for scene in STREAM_SCENES:
        baseline = _spawn_worker(scene, SCALE, "ram")
        streamed = _spawn_worker(scene, SCALE, "streamed",
                                 chunk_size=CHUNK_SIZES[0])
        _assert_identical(baseline, streamed)
        piped = _spawn_worker(scene, SCALE, "pipelined",
                              chunk_size=CHUNK_SIZES[0], stream_workers=2)
        _assert_identical(baseline, piped)
        for row in (streamed, piped):
            peak = max(row["maxrss_mb"], row["maxrss_children_mb"])
            if peak > SMOKE_RSS_BUDGET_MB:
                raise AssertionError(
                    f"{scene}: {row['mode']} peak RSS {peak} MB "
                    f"exceeds the {SMOKE_RSS_BUDGET_MB} MB budget")
        print(f"{scene}: streamed + pipelined == in-RAM (curve + 3C), "
              f"peaks {streamed['maxrss_mb']}/{piped['maxrss_mb']} MB "
              f"(in-RAM {baseline['maxrss_mb']} MB, "
              f"budget {SMOKE_RSS_BUDGET_MB} MB)")
    print(f"smoke OK: bit-identical streamed and pipelined pipelines on "
          f"{len(STREAM_SCENES)} scenes at scale {SCALE}")
    return 0


def measure_streaming() -> dict:
    rows = []
    for scale in STREAM_SCALES:
        for scene in STREAM_SCENES:
            baseline = _spawn_worker(scene, scale, "ram")
            rows.append(baseline)
            print(f"{scene:8s} scale {scale:4}  in-RAM    "
                  f"{baseline['elapsed_s']:7.1f} s  "
                  f"{baseline['maxrss_mb']:7.1f} MB  "
                  f"{baseline['fragments_per_s']:>9,} frag/s")
            for chunk_size in CHUNK_SIZES:
                streamed = _spawn_worker(scene, scale, "streamed",
                                         chunk_size=chunk_size)
                _assert_identical(baseline, streamed)
                rows.append(streamed)
                print(f"{scene:8s} scale {scale:4}  chunk {chunk_size >> 10:4}K "
                      f"{streamed['elapsed_s']:7.1f} s  "
                      f"{streamed['maxrss_mb']:7.1f} MB  "
                      f"{streamed['fragments_per_s']:>9,} frag/s")
            for mode, kwargs in (("sharded", dict(shards=2)),
                                 ("pipelined", dict(stream_workers=2))):
                row = _spawn_worker(scene, scale, mode,
                                    chunk_size=CHUNK_SIZES[0], **kwargs)
                _assert_identical(baseline, row)
                rows.append(row)
                print(f"{scene:8s} scale {scale:4}  {mode:9s} "
                      f"{row['elapsed_s']:7.1f} s  "
                      f"{row['maxrss_mb']:7.1f} MB  "
                      f"{row['fragments_per_s']:>9,} frag/s")
    streaming_rows = [row for row in rows if row["mode"] != "ram"]
    ram_rows = [row for row in rows if row["mode"] == "ram"]
    return {
        "bench": "streaming_pipeline",
        "config": {
            "scenes": list(STREAM_SCENES),
            "scales": list(STREAM_SCALES),
            "chunk_sizes": list(CHUNK_SIZES),
            "layout": list(STREAM_LAYOUT),
            "line_size": STREAM_LINE_SIZE,
            "shards": 2,
            "stream_workers": 2,
            "equivalence": "bit-identical miss-rate curves and 3C "
                           "classifications vs the in-RAM pipeline, "
                           "verified per row before timing counts",
            "rss_meter": "resource.getrusage(RUSAGE_SELF).ru_maxrss in a "
                         "fresh subprocess per measurement, cold store "
                         "(maxrss_children_mb: largest forked worker)",
        },
        "rows": rows,
        "peak_rss_mb": {
            "streamed_max": max(max(row["maxrss_mb"],
                                    row["maxrss_children_mb"])
                                for row in streaming_rows),
            "in_ram_max": max(row["maxrss_mb"] for row in ram_rows),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="equivalence + RSS-budget gate at REPRO_SCALE, "
                             "no BENCH_streaming.json")
    parser.add_argument("--worker", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--scene", default="town", help=argparse.SUPPRESS)
    parser.add_argument("--scale-value", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--mode", default="ram", help=argparse.SUPPRESS)
    parser.add_argument("--chunk", type=int, default=0, help=argparse.SUPPRESS)
    parser.add_argument("--shards", type=int, default=0,
                        help=argparse.SUPPRESS)
    parser.add_argument("--stream-workers", type=int, default=0,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker:
        row = _run_pipeline(args.scene, float(args.scale_value), args.mode,
                            args.chunk, args.shards, args.stream_workers)
        print(json.dumps(row))
        return 0
    if args.smoke:
        return streaming_smoke()

    report = measure_streaming()
    STREAM_RESULT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    print(f"peak RSS: streamed {report['peak_rss_mb']['streamed_max']} MB "
          f"vs in-RAM {report['peak_rss_mb']['in_ram_max']} MB "
          f"(scales {STREAM_SCALES})")
    print(f"wrote {STREAM_RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

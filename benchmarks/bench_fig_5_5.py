"""Figure 5.5: effect of matched line/block size on miss rate.

All four scenes, fully associative cache of the paper's 32 KB (scaled),
with the block size chosen to match each line size.  At this cache size
the remaining misses are mostly cold misses, so this shows how much
spatial locality larger lines harvest.

Paper values at full scale: 32 B lines -> Flight 2.8%, Goblet 1.5%,
Guitar 1.2%, Town 0.8%; 128 B lines -> 0.87%, 0.41%, 0.36%, 0.21%.
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import miss_rate_curve
from repro.scenes import ALL_SCENES

CACHE = scaled_cache(32 * 1024)
#: line size -> matching square block (closest block footprint <= line).
MATCHED = {16: 2, 32: 2, 64: 4, 128: 4, 256: 8}

PAPER_32B = {"flight": 2.8, "goblet": 1.5, "guitar": 1.2, "town": 0.8}
PAPER_128B = {"flight": 0.87, "goblet": 0.41, "guitar": 0.36, "town": 0.21}


def measure(bank):
    rates = {}
    for name in ALL_SCENES:
        order = bank.paper_order_spec(name)
        for line, block in MATCHED.items():
            streams = bank.streams(name, order, ("blocked", block))
            rates[(name, line)] = miss_rate_curve(
                streams.stream(line), line, [CACHE]).miss_rates[0]
    return rates


def test_fig_5_5(benchmark, bank):
    rates = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = []
    for name in ALL_SCENES:
        row = [name]
        for line in MATCHED:
            cell = f"{100 * rates[(name, line)]:.2f}%"
            if line == 32:
                cell += f" ({PAPER_32B[name]}%)"
            if line == 128:
                cell += f" ({PAPER_128B[name]}%)"
            row.append(cell)
        rows.append(row)
    text = format_table(
        ["scene"] + [f"{line}B/{MATCHED[line]}x{MATCHED[line]}" for line in MATCHED],
        rows,
        title=(f"Fully associative {kb(CACHE)} cache, matched line/block "
               "(paper values at 32B and 128B in parentheses):"),
    )
    emit("fig_5_5", text)

    # Shape guards: significant monotone-ish reduction with line size,
    # and the paper's scene ordering at 32 B (Flight worst: fragmented
    # accesses across mip levels; Town best: gradual LoD + repetition).
    for name in ALL_SCENES:
        assert rates[(name, 128)] < 0.6 * rates[(name, 32)], name
    # Town (gradual LoD on flat surfaces + repeated textures) has the
    # lowest cold-dominated miss rate, as in the paper; Flight's
    # fragmented mip accesses keep it near the top.
    assert rates[("town", 32)] == min(rates[(n, 32)] for n in ALL_SCENES)
    others = sorted(rates[(n, 32)] for n in ALL_SCENES)
    assert rates[("flight", 32)] >= others[-2]

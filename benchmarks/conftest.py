"""Pytest wiring for the benchmark harnesses."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from paperbench import SceneBank  # noqa: E402


@pytest.fixture(scope="session")
def bank():
    """One SceneBank per benchmark session: renders are shared across
    every table/figure harness."""
    return SceneBank()

"""Pytest wiring for the benchmark harnesses."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from paperbench import SceneBank  # noqa: E402


@pytest.fixture(scope="session")
def bank():
    """One SceneBank per benchmark session: renders are shared across
    every table/figure harness."""
    shared = SceneBank()
    # Self-heal before a long bench session: quarantine anything a
    # previous crashed run corrupted and purge its stale temp litter.
    shared.engine.store.repair()
    return shared

"""Auxiliary simulator timings: per-access outcome kernels versus the
sequential loops they replaced.

Where ``bench_simulator.py`` times the aggregate miss-count sweep, this
harness times the three simulators that need *per-access* answers and
now read them off :mod:`repro.core.kernels`:

* ``hierarchy`` -- :func:`~repro.core.hierarchy.simulate_hierarchy`
  (L1+L2 pair; each level's miss stream carved out by boolean mask),
* ``prefetch`` -- :func:`~repro.core.prefetch.fragment_miss_counts`
  (per-fragment miss folds from the per-access miss mask),
* ``dram`` -- :meth:`~repro.core.dram.DramModel.access_cycles`
  (row-switch counting by bank-grouped sort instead of an open-row
  walk).

Each is verified for exact equality (per-level integer counts,
per-fragment arrays, cycle totals) against its ``kernel="reference"``
path on every scene before anything is timed.  Results land in
``BENCH_aux.json`` at the repository root with schema ``{bench, config,
ms_before, ms_after, speedup}``; the headline speedup is combined
(summed reference time over summed vectorized time).

Run directly (``python benchmarks/bench_aux_kernels.py``) or through
the benchmark suite; ``--smoke`` runs reduced samples, skips the JSON
and just checks equivalence.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from paperbench import SceneBank, paper_order_spec, scaled_cache  # noqa: E402

from repro.core import CacheConfig  # noqa: E402
from repro.core.dram import PAPER_DRAM  # noqa: E402
from repro.core.hierarchy import simulate_hierarchy  # noqa: E402
from repro.core.prefetch import fragment_miss_counts  # noqa: E402

SCENES = ("flight", "goblet", "guitar", "town")
LAYOUT = ("blocked", 8)
HIERARCHY_SAMPLE = 400000
PREFETCH_SAMPLE = 400000
DRAM_SAMPLE = 200000
DRAM_BURST = 4
SMOKE_DIVISOR = 10

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_aux.json"


def _hierarchy_configs():
    return [CacheConfig(scaled_cache(4 * 1024), 32, 2),
            CacheConfig(scaled_cache(32 * 1024), 128, 2)]


def _prefetch_config():
    return CacheConfig(scaled_cache(32 * 1024), 128, 2)


def _level_counts(stats):
    return [(s.accesses, s.misses, s.cold_misses) for s in stats.levels]


def _benches(smoke: bool):
    divisor = SMOKE_DIVISOR if smoke else 1
    configs = _hierarchy_configs()
    prefetch = _prefetch_config()
    return {
        "hierarchy": {
            "sample": HIERARCHY_SAMPLE // divisor,
            "run": lambda addresses, kernel: simulate_hierarchy(
                addresses, configs, kernel=kernel),
            "check": lambda fast, slow: _level_counts(fast) == _level_counts(slow),
        },
        "prefetch": {
            "sample": PREFETCH_SAMPLE // divisor,
            "run": lambda addresses, kernel: fragment_miss_counts(
                addresses, prefetch, kernel=kernel),
            "check": lambda fast, slow: bool(np.array_equal(fast, slow)),
        },
        "dram": {
            "sample": DRAM_SAMPLE // divisor,
            "run": lambda addresses, kernel: PAPER_DRAM.access_cycles(
                addresses, DRAM_BURST, kernel=kernel),
            "check": lambda fast, slow: fast == slow,
        },
    }


def _timed(run) -> float:
    start = time.perf_counter()
    run()
    return 1000 * (time.perf_counter() - start)


def measure(bank, smoke: bool = False) -> dict:
    benches = _benches(smoke)
    per_bench = {name: {"ms_before": 0.0, "ms_after": 0.0}
                 for name in benches}
    totals = {"before": 0.0, "after": 0.0}
    for scene in SCENES:
        streams = bank.streams(scene, paper_order_spec(scene), LAYOUT)
        for name, bench in benches.items():
            addresses = streams.addresses[:bench["sample"]]
            fast = bench["run"](addresses, "vectorized")
            slow = bench["run"](addresses, "reference")
            if not bench["check"](fast, slow):
                raise AssertionError(
                    f"{name}/{scene}: vectorized != reference")
            ms_before = _timed(lambda: bench["run"](addresses, "reference"))
            ms_after = min(
                _timed(lambda: bench["run"](addresses, "vectorized"))
                for _ in range(3))
            per_bench[name]["ms_before"] += ms_before
            per_bench[name]["ms_after"] += ms_after
            totals["before"] += ms_before
            totals["after"] += ms_after
    for entry in per_bench.values():
        entry["speedup"] = round(
            entry["ms_before"] / max(entry["ms_after"], 1e-9), 2)
        entry["ms_before"] = round(entry["ms_before"], 3)
        entry["ms_after"] = round(entry["ms_after"], 3)
    return {
        "bench": "aux_outcome_kernels",
        "config": {
            "scale": bank.scale,
            "scenes": list(SCENES),
            "layout": list(LAYOUT),
            "hierarchy": [c.label() for c in _hierarchy_configs()],
            "prefetch": _prefetch_config().label(),
            "dram_burst": DRAM_BURST,
            "samples": {name: bench["sample"]
                        for name, bench in _benches(smoke).items()},
            "per_bench": per_bench,
        },
        "ms_before": round(totals["before"], 3),
        "ms_after": round(totals["after"], 3),
        "speedup": round(totals["before"] / max(totals["after"], 1e-9), 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced samples, equivalence check only "
                             "(no BENCH_aux.json)")
    args = parser.parse_args(argv)

    bank = SceneBank()
    report = measure(bank, smoke=args.smoke)
    per_bench = report["config"]["per_bench"]
    detail = ", ".join(f"{name} {entry['speedup']:.1f}x"
                       for name, entry in per_bench.items())
    print(f"{report['bench']}: {len(SCENES)} scenes, reference "
          f"{report['ms_before']:.1f} ms -> vectorized "
          f"{report['ms_after']:.1f} ms "
          f"({report['speedup']:.1f}x combined; {detail})")
    if args.smoke:
        print("smoke OK: vectorized == reference for hierarchy, "
              "prefetch and DRAM on every scene")
        return 0
    RESULT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {RESULT_PATH}")
    return 0


def test_aux_kernels(bank):
    """Benchmark-suite entry: full measurement plus the JSON artifact."""
    report = measure(bank)
    RESULT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    assert report["speedup"] > 1.0


if __name__ == "__main__":
    sys.exit(main())

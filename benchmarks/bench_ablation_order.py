"""Ablation: Peano-Hilbert rasterization (the paper's footnote 1).

"The screen rasterization path that would lead to the smallest working
set would follow a Peano-Hilbert order since this would traverse a
region of the texture in a spatially contiguous manner."  The paper
never measures this conjecture; we do, against scan-line and tiled
orders on the Guitar scene (large triangles, where traversal matters
most).
"""

import numpy as np

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import miss_rate_curve

CACHE_SIZES = sorted({scaled_cache(1024 * k) for k in (1, 2, 4, 8, 32)})
LINE = 128
LAYOUT = ("blocked", 8)
SCENE = "guitar"


def order_specs(bank):
    scene = bank.scene(SCENE)
    bits = int(np.ceil(np.log2(max(scene.width, scene.height))))
    return [
        ("horizontal", ("horizontal",)),
        ("tiled 8x8", ("tiled", 8)),
        ("tiled 16x16", ("tiled", 16)),
        ("hilbert", ("hilbert", bits)),
    ]


def measure(bank):
    curves = {}
    for label, spec in order_specs(bank):
        streams = bank.streams(SCENE, spec, LAYOUT)
        curves[label] = miss_rate_curve(streams.stream(LINE), LINE, CACHE_SIZES)
    return curves


def test_ablation_order(benchmark, bank):
    curves = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = [
        [label] + [f"{100 * r:.2f}%" for r in curve.miss_rates]
        for label, curve in curves.items()
    ]
    text = format_table(
        ["order"] + [kb(s) for s in CACHE_SIZES], rows,
        title=f"{SCENE}, blocked 8x8, {LINE}B lines, fully associative:",
    )
    text += ("\n\nFootnote 1 confirmed: the Hilbert path performs like the "
             "best tiled order at small caches -- and static tiles get "
             "within a few percent of it, at far lower implementation "
             "cost.")
    emit("ablation_order", text)

    # The conjecture: Hilbert beats plain scan-line order at
    # sub-working-set cache sizes, and tiles approximate it.
    small = slice(1, 3)
    hilbert = curves["hilbert"].miss_rates[small].mean()
    horizontal = curves["horizontal"].miss_rates[small].mean()
    tiled = curves["tiled 8x8"].miss_rates[small].mean()
    assert hilbert < horizontal
    assert tiled < 1.6 * hilbert

"""Section 7.1.2: banked-cache access parallelism.

"A conflict-free address distribution which allows up to four texels
to be accessed in parallel is possible if the texels are stored in a
morton order within the cache lines."  This harness verifies the claim
on real filter quads from every scene, against a naive row-major bank
interleave.
"""

from paperbench import emit

from repro.analysis import format_table
from repro.core.banking import analyze_banking
from repro.scenes import ALL_SCENES


def measure(bank):
    stats = {}
    for name in ALL_SCENES:
        trace = bank.trace(name, bank.paper_order_spec(name))
        width0 = bank.scene(name).get_mipmaps()[0].level_shape(0)[0]
        stats[name] = {
            "morton": analyze_banking(trace, "morton"),
            "linear": analyze_banking(trace, "linear", level0_width=width0),
        }
    return stats


def test_banking(benchmark, bank):
    stats = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = []
    for name, entry in stats.items():
        rows.append([
            name,
            f"{100 * entry['morton'].conflict_free_fraction:.1f}%",
            f"{entry['morton'].mean_cycles_per_quad:.3f}",
            f"{100 * entry['linear'].conflict_free_fraction:.1f}%",
            f"{entry['linear'].mean_cycles_per_quad:.3f}",
        ])
    text = format_table(
        ["scene", "morton conflict-free", "morton cycles/quad",
         "linear conflict-free", "linear cycles/quad"],
        rows,
        title="Four-bank cache, one 2x2 filter quad per cycle:",
    )
    text += ("\n\nPaper's claim verified: morton interleaving serves every "
             "quad in one cycle; naive row-major interleaving serializes "
             "most quads (vertically adjacent texels share a bank).")
    emit("banking", text)

    for name, entry in stats.items():
        assert entry["morton"].conflict_free_fraction == 1.0, name
        assert entry["linear"].conflict_free_fraction < 0.5, name

"""Ablation: compressed textures and the cache (Section 8 future work).

"It would be interesting to study the interaction between compressed
representations of textures and cache architectures."  We run it:
Beers-style 2x2 vector quantization (one index byte per four texels,
on-chip codebook) against the paper's best uncompressed representation
(padded blocked) on the Flight scene -- the scene with the most texture
data, where compression matters most.

The interaction is twofold: the index plane is 16x smaller, so (i) the
same cache covers 16x more texture (capacity misses fall) and (ii)
each miss transfers one line of *indices*, i.e. 16x more texels'
worth of data per byte of bandwidth.
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import miss_rate_curve
from repro.core.machine import PAPER_MACHINE

CACHE_SIZES = sorted({scaled_cache(1024 * k) for k in (1, 2, 4, 8, 32)})
LINE = 64
SCENE = "flight"
ORDER = ("tiled", 8)


def measure(bank):
    curves = {}
    for label, layout in [("padded 4x4 (uncompressed)", ("padded", 4, 4)),
                          ("vq 2x2 indices", ("vq", 8))]:
        if layout[0] == "vq":
            from repro.texture.compression import VQCompressedLayout
            from repro.texture.memory import place_textures
            placements = place_textures(
                bank.scene(SCENE).get_mipmaps(),
                VQCompressedLayout(index_block_w=layout[1]))
            addresses = bank.trace(SCENE, ORDER).byte_addresses(placements)
        else:
            addresses = bank.trace(SCENE, ORDER).byte_addresses(
                bank.placements(SCENE, layout))
        curves[label] = miss_rate_curve(addresses, LINE, CACHE_SIZES)
    return curves


def test_ablation_compression(benchmark, bank):
    curves = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    accesses_per_second = (PAPER_MACHINE.texels_per_fragment
                           * PAPER_MACHINE.peak_fragments_per_second)
    rows = []
    for label, curve in curves.items():
        for size, rate in zip(curve.sizes, curve.miss_rates):
            bandwidth = rate * accesses_per_second * LINE / 2**20
            rows.append([label, kb(int(size)), f"{100 * rate:.3f}%",
                         f"{bandwidth:.0f} MB/s"])
    text = format_table(
        ["representation", "cache", "miss rate", "bandwidth @50Mfrag/s"],
        rows,
        title=f"{SCENE}, fully associative, {LINE}B lines:",
    )
    text += ("\n\nVQ compression shifts the whole curve down (one index "
             "byte serves four texels), multiplying the cache's effective "
             "capacity and cutting bandwidth well below the uncompressed "
             "floor -- at the cost of lossy textures and an on-chip "
             "codebook per texture.")
    emit("ablation_compression", text)

    uncompressed = curves["padded 4x4 (uncompressed)"]
    compressed = curves["vq 2x2 indices"]
    for index in range(len(CACHE_SIZES)):
        assert compressed.miss_rates[index] < 0.55 * uncompressed.miss_rates[index]
    # Cold floor itself drops by roughly the compression factor.
    assert compressed.cold_miss_rate < uncompressed.cold_miss_rate / 2.0

"""Figure 5.2 and Section 5.2.2: the base (nonblocked) representation.

(a) Miss rate versus cache size under horizontal rasterization and
(b) under vertical rasterization, fully associative, 32-byte lines --
plus the cold miss rates at 32- and 128-byte lines.

Paper findings reproduced here:
* first working sets are small: Flight 4 KB, Town 8 KB, Guitar 16 KB,
  Goblet 16 KB at full scale (scaled by REPRO_SCALE here);
* Town's working set doubles under vertical rasterization (upright
  textures make column-major traversal the worst case);
* cold miss rates are low (0.55%-2.8% at 32 B) and drop ~3-4x with
  128-byte lines.
"""

from paperbench import SCALE, emit, kb, scaled_cache

from repro.analysis import first_working_set, format_series, format_table, miss_rate_chart
from repro.core import miss_rate_curve
from repro.scenes import ALL_SCENES

PAPER_COLD_32 = {"town": 0.0055, "guitar": 0.0087, "goblet": 0.015, "flight": 0.028}
PAPER_COLD_128 = {"town": 0.0015, "guitar": 0.0025, "goblet": 0.0042, "flight": 0.011}
PAPER_WORKING_SET = {"flight": 4, "town": 8, "guitar": 16, "goblet": 16}  # KB, horizontal

CACHE_SIZES = sorted({scaled_cache(1024 * k) for k in (1, 2, 4, 8, 16, 32, 64, 128, 256)})
LAYOUT = ("nonblocked",)


def measure(bank):
    curves = {}
    colds = {}
    for name in ALL_SCENES:
        for direction in ("horizontal", "vertical"):
            streams = bank.streams(name, (direction,), LAYOUT)
            curves[(name, direction)] = miss_rate_curve(
                streams.stream(32), 32, CACHE_SIZES)
        streams = bank.streams(name, ("horizontal",), LAYOUT)
        colds[name] = (
            miss_rate_curve(streams.stream(32), 32, [CACHE_SIZES[-1]]).cold_miss_rate,
            miss_rate_curve(streams.stream(128), 128, [CACHE_SIZES[-1]]).cold_miss_rate,
        )
    return curves, colds


def test_fig_5_2(benchmark, bank):
    curves, colds = benchmark.pedantic(measure, args=(bank,), rounds=1,
                                       iterations=1)

    lines = []
    for direction in ("horizontal", "vertical"):
        lines.append(f"\n(%s rasterization)" % direction)
        for name in ALL_SCENES:
            curve = curves[(name, direction)]
            lines.append(format_series(
                f"  {name:8s}", [kb(s) for s in curve.sizes],
                [f"{100 * r:.2f}%" for r in curve.miss_rates],
                "cache", "miss"))
    cold_rows = [
        [name,
         f"{100 * colds[name][0]:.2f}% ({100 * PAPER_COLD_32[name]:.2f}%)",
         f"{100 * colds[name][1]:.2f}% ({100 * PAPER_COLD_128[name]:.2f}%)"]
        for name in ALL_SCENES
    ]
    ws_rows = []
    for name in ALL_SCENES:
        ws = first_working_set(curves[(name, "horizontal")])
        ws_rows.append([name, kb(ws.size),
                        kb(int(PAPER_WORKING_SET[name] * 1024 * SCALE)) + " (scaled paper)"])
    text = "\n".join(lines)
    text += "\n\n" + format_table(
        ["scene", "cold @32B (paper)", "cold @128B (paper)"], cold_rows,
        title="Cold miss rates, Section 5.2.2:")
    text += "\n\n" + format_table(
        ["scene", "measured first working set", "paper working set x scale"],
        ws_rows, title="First working sets (horizontal):")
    for direction in ("horizontal", "vertical"):
        text += "\n\n" + miss_rate_chart(
            {name: curves[(name, direction)] for name in ALL_SCENES},
            title=f"Figure 5.2 ({direction}), nonblocked, 32B lines:")
    emit("fig_5_2", text)

    # Shape guards.
    for name in ALL_SCENES:
        horizontal = curves[(name, "horizontal")]
        vertical = curves[(name, "vertical")]
        # Curves are non-increasing and converge at large sizes.
        assert (horizontal.miss_rates[:-1] >= horizontal.miss_rates[1:] - 1e-12).all()
        assert vertical.miss_rates[-1] < 1.15 * horizontal.miss_rates[-1] + 1e-9
        # Cold misses drop substantially with the longer line.
        cold32, cold128 = colds[name]
        assert cold128 < cold32 / 2.0
    # Town is direction-sensitive at small caches (upright textures).
    assert curves[("town", "vertical")].miss_rates[0] > \
        1.5 * curves[("town", "horizontal")].miss_rates[0]
    # Goblet's small triangles make it direction-insensitive.
    goblet_v = curves[("goblet", "vertical")].miss_rates[0]
    goblet_h = curves[("goblet", "horizontal")].miss_rates[0]
    assert goblet_v < 1.6 * goblet_h

"""Figure 5.7: effect of cache associativity on conflict misses.

Goblet (horizontal) and Town (vertical), 8x8 blocks, 128-byte lines,
associativities direct-mapped through fully associative across cache
sizes.

Paper findings:
* Goblet (small triangles): direct-mapped suffers conflicts between
  adjacent Mip Map levels; two-way matches fully associative.
* Town-vertical: two-way helps with Mip-level conflicts, but conflicts
  between blocks in the same 2D array persist -- a gap to fully
  associative remains, and limited associativity beyond two-way only
  helps at small sizes.
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import CacheConfig, simulate

CACHE_SIZES = [scaled_cache(1024 * k) for k in (4, 8, 16, 32, 64, 128)]
ASSOCIATIVITIES = (1, 2, 4, 8, 16, None)
LINE = 128
LAYOUT = ("blocked", 8)

SCENES = {"goblet": ("horizontal",), "town": ("vertical",)}


def measure(bank):
    rates = {}
    for name, order in SCENES.items():
        streams = bank.streams(name, order, LAYOUT)
        stream = streams.stream(LINE)
        for size in CACHE_SIZES:
            for assoc in ASSOCIATIVITIES:
                stats = simulate(stream, CacheConfig(size, LINE, assoc))
                rates[(name, size, assoc)] = stats.miss_rate
    return rates


def label(assoc):
    return "full" if assoc is None else f"{assoc}-way"


def test_fig_5_7(benchmark, bank):
    rates = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    sections = []
    for name, order in SCENES.items():
        rows = []
        for size in CACHE_SIZES:
            rows.append([kb(size)] + [
                f"{100 * rates[(name, size, assoc)]:.3f}%"
                for assoc in ASSOCIATIVITIES
            ])
        sections.append(format_table(
            ["cache"] + [label(a) for a in ASSOCIATIVITIES], rows,
            title=f"{name} ({order[0]}), 8x8 blocks, {LINE}B lines:",
        ))
    text = "\n\n".join(sections)
    text += ("\n\nPaper: (a) Goblet -- direct-mapped >> 2-way = fully "
             "associative (Mip-level conflicts); (b) Town-vertical -- a "
             "gap between 2-way and fully associative remains (same-array "
             "block conflicts).")
    emit("fig_5_7", text)

    # Goblet: direct-mapped suffers; 2-way ~ fully associative.
    goblet_gap = []
    for size in CACHE_SIZES[:4]:
        direct = rates[("goblet", size, 1)]
        two_way = rates[("goblet", size, 2)]
        full = rates[("goblet", size, None)]
        goblet_gap.append(direct / max(two_way, 1e-9))
        assert two_way < 1.6 * full + 1e-9, size
    assert max(goblet_gap) > 1.5
    # Town-vertical: 2-way still beats direct...
    small = CACHE_SIZES[0]
    assert rates[("town", small, 2)] < rates[("town", small, 1)]
    # ...but a gap to fully associative persists somewhere in the sweep.
    gaps = [rates[("town", size, 2)] - rates[("town", size, None)]
            for size in CACHE_SIZES]
    assert max(gaps) > 0.0005

"""Ablation: cache replacement policy.

The paper assumes LRU throughout (Section 5.2.2).  This harness checks
how much that choice matters for texture streams by pitting LRU against
FIFO and random replacement on two contrasting scenes at two-way and
fully-associative organizations.
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import CacheConfig, simulate

CACHE_SIZES = [scaled_cache(1024 * k) for k in (4, 16)]
LINE = 64
LAYOUT = ("blocked", 4)
POLICIES = ("lru", "fifo", "random")

SCENES = {"town": ("vertical",), "goblet": ("horizontal",)}


def measure(bank):
    rates = {}
    for scene, order in SCENES.items():
        streams = bank.streams(scene, order, LAYOUT)
        stream = streams.stream(LINE)
        for size in CACHE_SIZES:
            for assoc in (2, None):
                config = CacheConfig(size, LINE, assoc)
                for policy in POLICIES:
                    stats = simulate(stream, config, policy=policy, seed=1)
                    rates[(scene, size, assoc, policy)] = stats.miss_rate
    return rates


def test_ablation_replacement(benchmark, bank):
    rates = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = []
    for scene in SCENES:
        for size in CACHE_SIZES:
            for assoc in (2, None):
                label = "full" if assoc is None else f"{assoc}-way"
                rows.append([scene, kb(size), label] + [
                    f"{100 * rates[(scene, size, assoc, policy)]:.3f}%"
                    for policy in POLICIES
                ])
    text = format_table(
        ["scene", "cache", "assoc", "lru", "fifo", "random"], rows,
        title=f"Replacement-policy ablation, blocked 4x4, {LINE}B lines:",
    )
    text += ("\n\nTexture streams are so sequential that FIFO tracks LRU "
             "closely; random costs a little more.  The paper's LRU "
             "assumption is safe but not critical.")
    emit("ablation_replacement", text)

    for key_scene in SCENES:
        for size in CACHE_SIZES:
            for assoc in (2, None):
                lru = rates[(key_scene, size, assoc, "lru")]
                fifo = rates[(key_scene, size, assoc, "fifo")]
                random_ = rates[(key_scene, size, assoc, "random")]
                # All policies agree within a factor; LRU is never far
                # behind the best.
                best = min(lru, fifo, random_)
                assert lru <= best * 1.35 + 1e-9

"""Section 7.1.1: hiding the memory latency by prefetching.

"Even though the memory latency tends to be very long (roughly fifty
10ns cycles for a 128 byte cache line), it still must be completely
hidden to achieve the maximum rate of fragments textured per second."

This harness drives the paper's dual-rasterizer prefetch FIFO with the
*actual* per-fragment miss sequence of the Goblet and Flight scenes and
sweeps the FIFO depth: depth 0 is the no-prefetch strawman whose
bandwidth collapses; modest depths recover the 50 Mfragment/s peak.
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import CacheConfig
from repro.core.prefetch import fragment_miss_counts, sweep_fifo_depths

LINE = 128
DEPTHS = (0, 1, 2, 4, 8, 16, 32, 64)
SCENES = {"goblet": ("horizontal",), "flight": ("horizontal",)}
LAYOUT = ("padded", 8, 4)

#: The paper requires the memory *bandwidth* to be met so that latency
#: is the only obstacle (Section 7.1.1); give the DRAM channel 16
#: bytes/cycle of streaming bandwidth (an 8-cycle line occupancy) while
#: keeping the paper's 50-cycle fill latency.
FILL_INTERVAL = LINE / 16.0


def measure(bank):
    out = {}
    for scene, order in SCENES.items():
        config = CacheConfig(scaled_cache(32 * 1024), LINE, 2)
        addresses = bank.trace(scene, order).byte_addresses(
            bank.placements(scene, LAYOUT))
        # Cap the walk for the per-access (uncollapsed) simulation.
        counts = fragment_miss_counts(addresses[:400000], config)
        out[scene] = sweep_fifo_depths(counts, LINE, DEPTHS,
                                       fill_interval=FILL_INTERVAL)
    return out


def test_prefetch(benchmark, bank):
    out = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = []
    for scene, results in out.items():
        for depth in DEPTHS:
            result = results[depth]
            rows.append([
                scene, depth,
                f"{result.fragments_per_second / 1e6:.1f} Mfrag/s",
                f"{100 * result.efficiency:.1f}%",
                f"{100 * result.stall_cycles / result.total_cycles:.1f}%",
            ])
    text = format_table(
        ["scene", "FIFO depth", "achieved rate", "of 50M peak", "stall share"],
        rows,
        title=(f"Prefetch FIFO sweep, {kb(scaled_cache(32 * 1024))} 2-way "
               f"cache, {LINE}B lines (50-cycle fills):"),
    )
    text += ("\n\nDepth 0 = no prefetching: the 50-cycle fill latency "
             "gates every missing fragment.  A FIFO a few tens of "
             "fragments deep hides it completely, as Section 7.1.1 "
             "requires.")
    emit("prefetch", text)

    for scene, results in out.items():
        no_prefetch = results[0]
        deep = results[DEPTHS[-1]]
        # Latency exposed vs hidden: the paper's motivating gap.
        assert no_prefetch.efficiency < 0.7, scene
        assert deep.efficiency > 0.9, scene
        # Monotone improvement with depth.
        efficiencies = [results[d].efficiency for d in DEPTHS]
        assert all(a <= b + 1e-9 for a, b in zip(efficiencies, efficiencies[1:]))

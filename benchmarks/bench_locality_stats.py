"""Section 3.1.2 / Section 5.2.3 locality statistics.

Regenerates the paper's pre-cache locality measurements:

* accesses per texel -- trilinear lower level ~4, upper level ~14-16,
  bilinear ~18 (scene dependent);
* texture repetition -- Town 2.9x, Guitar 1.7x, Goblet 1.1x,
  Flight 1.0x;
* same-texture runlengths -- 223,629 (Town), 553,745 (Guitar) and
  562,154 (Flight) at full scale; the headline is that the working set
  holds one texture at a time.
"""

from paperbench import emit

from repro.analysis import (
    accesses_per_texel,
    format_table,
    mean_texture_runlength,
    repetition_factor,
)
from repro.scenes import ALL_SCENES

PAPER_REPETITION = {"town": 2.9, "guitar": 1.7, "goblet": 1.1, "flight": 1.0}
PAPER_RUNLENGTH = {"town": 223629, "guitar": 553745, "flight": 562154}


def measure(bank):
    stats = {}
    for name in ALL_SCENES:
        trace = bank.trace(name, bank.paper_order_spec(name))
        stats[name] = {
            "apt": accesses_per_texel(trace),
            "repetition": repetition_factor(trace),
            "runlength": mean_texture_runlength(trace),
            "accesses": trace.n_accesses,
        }
    return stats


def test_locality_stats(benchmark, bank):
    stats = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = []
    for name, entry in stats.items():
        apt = entry["apt"]
        paper_run = PAPER_RUNLENGTH.get(name)
        rows.append([
            name,
            f"{apt.lower:.1f} (4)",
            f"{apt.upper:.1f} (14-16)",
            f"{apt.bilinear:.1f} (18)" if apt.bilinear else "-",
            f"{entry['repetition']:.2f} ({PAPER_REPETITION[name]})",
            f"{entry['runlength']:.0f}"
            + (f" ({paper_run})" if paper_run else " (single texture)"),
        ])
    text = format_table(
        ["scene", "acc/texel lower", "acc/texel upper", "acc/texel bilinear",
         "repetition", "mean runlength"],
        rows,
        title="measured (paper values in parentheses; runlengths scale down "
              "with trace length)",
    )
    emit("locality_stats", text)

    # Paper-shape guards.
    for name, entry in stats.items():
        apt = entry["apt"]
        # Upper level texels are reused much more than lower level.
        assert apt.upper > 1.5 * apt.lower, name
        # Lower-level reuse is around the paper's ~4.
        assert 1.5 < apt.lower < 8.0, name
    # Repetition ordering: Town most repeated, Flight unrepeated.
    assert stats["flight"]["repetition"] < 1.1
    assert stats["goblet"]["repetition"] < 1.4
    assert stats["town"]["repetition"] > 1.8
    # Long same-texture runs: thousands of consecutive accesses.
    for name in ("town", "guitar", "flight"):
        assert stats[name]["runlength"] > 1000, name

"""Simulator kernel timings: reference loop versus vectorized kernels.

Times the Figure 5.7-style associativity sweep (cache sizes x
associativities at 128-byte lines) on the four benchmark scenes two
ways:

* ``ms_before`` -- the pre-kernel cost: one sequential
  :class:`~repro.core.cache.LRUCache` simulation per grid cell, which
  is what every harness paid before the stack-distance kernels landed.
* ``ms_after`` -- the cost the harnesses pay now: every cell read off
  a store-backed :class:`~repro.core.kernels.SetDistanceProfile`
  (warm steady state; the one-time cold kernel pass is reported
  separately as ``ms_after_cold`` in the config block).

Both paths are verified cell-by-cell for bit-identical miss counts
before anything is timed.  Results land in ``BENCH_simulator.json`` at
the repository root with schema ``{bench, config, ms_before, ms_after,
speedup}``.

Run directly (``python benchmarks/bench_simulator.py``) or through the
benchmark suite; ``--smoke`` runs a reduced grid, skips the JSON and
just checks equivalence (CI runs it at tiny scale on 3.9 and 3.12).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from paperbench import SceneBank, kb, paper_order_spec, scaled_cache  # noqa: E402

from repro.core import CacheConfig, simulate  # noqa: E402
from repro.core.sweep import TraceStreams  # noqa: E402
from repro.engine import StoredTraceStreams, TraceSpec, addresses_payload  # noqa: E402

CACHE_SIZES = [scaled_cache(1024 * k) for k in (4, 8, 16, 32, 64, 128)]
ASSOCIATIVITIES = (1, 2, 4, 8, 16, None)
LINE = 128
LAYOUT = ("blocked", 8)
SCENES = ("flight", "goblet", "guitar", "town")

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_simulator.json"


def grid(smoke: bool = False):
    sizes = CACHE_SIZES[:2] if smoke else CACHE_SIZES
    return [CacheConfig(size, LINE, assoc)
            for size in sizes for assoc in ASSOCIATIVITIES]


def reference_sweep(stream, configs):
    return [simulate(stream, config, kernel="reference") for config in configs]


def vectorized_sweep(streams, configs):
    return [streams.set_profile(LINE, config.n_sets).stats_for(config)
            for config in configs]


def fresh_stored_streams(bank, name):
    """A StoredTraceStreams with empty in-memory memos, so every
    profile comes from the on-disk store (the warm steady state a new
    session experiences)."""
    spec = TraceSpec(scene=name, scale=bank.scale,
                     order=paper_order_spec(name))
    payload = addresses_payload(spec, LAYOUT)
    addresses = bank.engine.store.load_addresses(payload)
    return StoredTraceStreams(addresses, store=bank.engine.store,
                              key_payload=payload)


def measure(bank, smoke: bool = False) -> dict:
    configs = grid(smoke)
    per_scene = {}
    totals = {"before": 0.0, "after": 0.0, "cold": 0.0}
    for name in SCENES:
        streams = bank.streams(name, paper_order_spec(name), LAYOUT)
        stream = streams.stream(LINE)

        reference = reference_sweep(stream, configs)
        # Warm the store and verify bit-identical miss counts first.
        vectorized = vectorized_sweep(fresh_stored_streams(bank, name),
                                      configs)
        for config, fast, slow in zip(configs, vectorized, reference):
            if (fast.misses, fast.cold_misses) != (slow.misses,
                                                   slow.cold_misses):
                raise AssertionError(
                    f"{name} {config.label()}: vectorized "
                    f"({fast.misses}, {fast.cold_misses}) != reference "
                    f"({slow.misses}, {slow.cold_misses})")

        start = time.perf_counter()
        reference_sweep(stream, configs)
        ms_before = 1000 * (time.perf_counter() - start)

        ms_after = min(
            _timed(lambda: vectorized_sweep(fresh_stored_streams(bank, name),
                                            configs))
            for _ in range(3))
        ms_cold = min(
            _timed(lambda: vectorized_sweep(TraceStreams(streams.addresses),
                                            configs))
            for _ in range(2))

        per_scene[name] = {"ms_before": round(ms_before, 3),
                           "ms_after": round(ms_after, 3),
                           "ms_after_cold": round(ms_cold, 3),
                           "run_accesses": int(len(stream.run_lines))}
        totals["before"] += ms_before
        totals["after"] += ms_after
        totals["cold"] += ms_cold
    return {
        "bench": "simulator_assoc_sweep",
        "config": {
            "scale": bank.scale,
            "line_size": LINE,
            "cache_sizes": [kb(size) for size in (CACHE_SIZES[:2] if smoke
                                                  else CACHE_SIZES)],
            "associativities": ["full" if a is None else a
                                for a in ASSOCIATIVITIES],
            "scenes": list(SCENES),
            "layout": list(LAYOUT),
            "warm_store": True,
            "ms_after_cold": round(totals["cold"], 3),
            "per_scene": per_scene,
        },
        "ms_before": round(totals["before"], 3),
        "ms_after": round(totals["after"], 3),
        "speedup": round(totals["before"] / max(totals["after"], 1e-9), 2),
    }


def _timed(run) -> float:
    start = time.perf_counter()
    run()
    return 1000 * (time.perf_counter() - start)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid, equivalence check only "
                             "(no BENCH_simulator.json)")
    args = parser.parse_args(argv)

    bank = SceneBank()
    report = measure(bank, smoke=args.smoke)
    summary = (f"{report['bench']}: {len(grid(args.smoke))} configs x "
               f"{len(SCENES)} scenes, reference {report['ms_before']:.1f} ms "
               f"-> warm kernels {report['ms_after']:.1f} ms "
               f"({report['speedup']:.1f}x; cold kernels "
               f"{report['config']['ms_after_cold']:.1f} ms)")
    print(summary)
    if args.smoke:
        print("smoke OK: vectorized == reference on the reduced grid")
        return 0
    RESULT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {RESULT_PATH}")
    return 0


def test_simulator_kernels(bank):
    """Benchmark-suite entry: full measurement plus the JSON artifact."""
    report = measure(bank)
    RESULT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    assert report["speedup"] > 1.0


if __name__ == "__main__":
    sys.exit(main())

"""Table 7.1: memory bandwidth requirements.

The paper's bottom line: at 50 million textured fragments per second,
memory bandwidth for three cache sizes (4 KB and 32 KB two-way, 128 KB
direct-mapped) across line sizes 32/64/128 B, with the blocked+padded
representation and 8x8-pixel tiled rasterization.  Block dims follow
the paper: 4x4 blocks for 32/64 B lines, 8x8 for 128 B.  The uncached
comparison is 1.5 GB/s; the paper reports a 3-15x reduction for the
32 KB cache.

Cache sizes are scaled by REPRO_SCALE like the rest of the harness;
bandwidths are computed at the paper's full 50 Mfragment/s machine.
"""

from paperbench import SCALE, emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import (
    CacheConfig,
    cached_bandwidth,
    mbytes_per_second,
    simulate,
    uncached_bandwidth,
)

#: (paper cache KB, assoc) columns and the per-line block sizes.
CACHES = [(4, 2), (32, 2), (128, 1)]
LINES = {32: 4, 64: 4, 128: 8}  # line size -> block dim
ORDER = ("tiled", 8)

#: Paper Table 7.1: scene -> {(cacheKB, line): (MB/s, miss%)}.
PAPER = {
    "flight": {(4, 32): (396, 3.24), (4, 64): (447, 1.83), (4, 128): (610, 1.25),
               (32, 32): (355, 2.91), (32, 64): (386, 1.58), (32, 128): (435, 0.89),
               (128, 32): (339, 2.78), (128, 64): (366, 1.50), (128, 128): (425, 0.87)},
    "town": {(4, 32): (233, 1.91), (4, 64): (271, 1.11), (4, 128): (444, 0.91),
             (32, 32): (99, 0.81), (32, 64): (103, 0.42), (32, 128): (122, 0.25),
             (128, 32): (77, 0.63), (128, 64): (78, 0.32), (128, 128): (88, 0.18)},
    "guitar": {(4, 32): (319, 2.61), (4, 64): (371, 1.52), (4, 128): (552, 1.13),
               (32, 32): (154, 1.26), (32, 64): (161, 0.66), (32, 128): (215, 0.44),
               (128, 32): (120, 0.98), (128, 64): (125, 0.51), (128, 128): (137, 0.28)},
    "goblet": {(4, 32): (385, 3.15), (4, 64): (566, 2.32), (4, 128): (596, 1.22),
               (32, 32): (189, 1.55), (32, 64): (212, 0.87), (32, 128): (225, 0.46),
               (128, 32): (194, 1.59), (128, 64): (215, 0.88), (128, 128): (229, 0.47)},
}

# town's paper (128, 32) cell is partially cut off in the source scan;
# 77 MB/s is back-computed from the 0.63% miss rate shown for guitar's
# row alignment -- treat town/guitar large-cache cells as approximate.


def measure(bank):
    results = {}
    for scene in PAPER:
        for line, block in LINES.items():
            streams = bank.streams(scene, ORDER, ("padded", block, 4))
            stream = streams.stream(line)
            for paper_kb, assoc in CACHES:
                config = CacheConfig(scaled_cache(paper_kb * 1024), line, assoc)
                stats = simulate(stream, config)
                results[(scene, paper_kb, line)] = stats.miss_rate
    return results


def test_table_7_1(benchmark, bank):
    results = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = []
    for scene in PAPER:
        for paper_kb, assoc in CACHES:
            for line in LINES:
                miss = results[(scene, paper_kb, line)]
                bandwidth = mbytes_per_second(cached_bandwidth(miss, line))
                paper_bw, paper_miss = PAPER[scene][(paper_kb, line)]
                rows.append([
                    scene,
                    f"{paper_kb}KB->{kb(scaled_cache(paper_kb * 1024))}"
                    f"/{line}B/{assoc}-way",
                    f"{bandwidth:.0f} ({paper_bw})",
                    f"{100 * miss:.2f}% ({paper_miss}%)",
                ])
    uncached = mbytes_per_second(uncached_bandwidth())
    text = format_table(
        ["scene", "cache (paper->scaled)", "MB/s (paper)", "miss (paper)"],
        rows,
        title=(f"Bandwidth at 50M fragments/s, blocked+padded, tiled 8x8 "
               f"(scale {SCALE}); uncached = {uncached:.0f} MB/s:"),
    )
    reductions = []
    for scene in PAPER:
        for line in LINES:
            miss = results[(scene, 32, line)]
            reductions.append(
                uncached_bandwidth() / cached_bandwidth(max(miss, 1e-9), line))
    text += (f"\n\n32KB-class cache bandwidth reduction: "
             f"{min(reductions):.1f}x - {max(reductions):.1f}x "
             "(paper: 3x - 15x)")
    emit("table_7_1", text)

    # Shape guards.
    for scene in PAPER:
        for line in LINES:
            # Bigger caches never need more bandwidth.
            assert results[(scene, 32, line)] <= results[(scene, 4, line)] + 1e-9
        # The 4KB -> 32KB transition shrinks bandwidth substantially for
        # at least one line size per scene (paper: "much reduced").
        gains = [results[(scene, 4, line)] / max(results[(scene, 32, line)], 1e-9)
                 for line in LINES]
        assert max(gains) > 1.3, scene
    # The headline: the working-set-sized cache cuts bandwidth several
    # fold across the board.  At reduced scale cold misses amortize
    # over fewer accesses, so the floor sits slightly below the paper's
    # 3x (it tightens toward 3-15x as REPRO_SCALE -> 1).
    assert min(reductions) > 2.0
    assert max(reductions) > 8.0

"""Cold render timings: triangle-batched versus per-triangle raster.

Times a trace-only cold render of the four benchmark scenes (paper
rasterization order, trilinear filtering) two ways:

* ``ms_before`` -- the per-triangle reference path
  (``Renderer(raster="reference")``): one
  :func:`~repro.raster.triangle.rasterize_triangle` call and one
  access-generation call per triangle.
* ``ms_after`` -- the triangle-batched path
  (``Renderer(raster="batched")``, the default): bins of triangles
  evaluated over flat candidate arrays and one access-generation call
  over the whole fragment stream.

Before anything is timed the two paths are verified **bit-identical**
per scene: every :class:`~repro.pipeline.trace.TexelTrace` column, the
per-triangle fragment counts, and (``--smoke`` only) the framebuffer
pixels of an image render.  Results land in ``BENCH_render.json`` at
the repository root with schema ``{bench, config, ms_before, ms_after,
speedup}`` matching ``BENCH_simulator.json``.

Run directly (``python benchmarks/bench_render.py``) or through the
benchmark suite; ``--smoke`` just checks equivalence at the current
``REPRO_SCALE`` and skips the JSON (CI runs it at tiny scale).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402
from paperbench import SCALE, SceneBank  # noqa: E402

from repro.engine import order_from_spec, paper_order_spec  # noqa: E402
from repro.pipeline.renderer import Renderer  # noqa: E402

SCENES = ("flight", "goblet", "guitar", "town")
TRACE_FIELDS = ("texture_id", "level", "tu", "tv", "tu_raw", "tv_raw", "kind")

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_render.json"


def _render(scene, order_spec, raster: str, produce_image: bool = False):
    renderer = Renderer(order=order_from_spec(order_spec),
                        produce_image=produce_image, raster=raster)
    return renderer.render(scene)


def verify_equivalence(scene, order_spec, check_image: bool = False) -> None:
    """Assert the batched path reproduces the reference bit-for-bit."""
    reference = _render(scene, order_spec, "reference")
    batched = _render(scene, order_spec, "batched")
    for field in TRACE_FIELDS:
        if not np.array_equal(getattr(reference.trace, field),
                              getattr(batched.trace, field)):
            raise AssertionError(f"{scene.name}: trace field {field!r} diverges")
    if reference.trace.n_fragments != batched.trace.n_fragments:
        raise AssertionError(f"{scene.name}: fragment counts diverge")
    if not np.array_equal(reference.per_triangle_fragments,
                          batched.per_triangle_fragments):
        raise AssertionError(f"{scene.name}: per-triangle fragments diverge")
    if check_image:
        ref_image = _render(scene, order_spec, "reference", produce_image=True)
        bat_image = _render(scene, order_spec, "batched", produce_image=True)
        if not np.array_equal(ref_image.framebuffer.pixels,
                              bat_image.framebuffer.pixels):
            raise AssertionError(f"{scene.name}: framebuffer diverges")


def _timed(run) -> float:
    start = time.perf_counter()
    run()
    return 1000 * (time.perf_counter() - start)


def measure(bank, repeats: int = 5) -> dict:
    per_scene = {}
    totals = {"before": 0.0, "after": 0.0}
    scenes_over_2x = 0
    for name in SCENES:
        scene = bank.scene(name)
        order_spec = paper_order_spec(name)
        verify_equivalence(scene, order_spec)

        # Best of ``repeats`` consecutive cold renders per path.  Timing
        # noise is strictly additive, so the minimum estimates the true
        # cost (the rationale behind ``timeit``'s ``min()`` convention),
        # and consecutive same-path runs let the allocator reuse the
        # identical working-set pages -- each path measured at its best.
        # The working-set allocations happen anew on every call; only
        # the scene and its mip pyramids are shared.
        ms_before = min(_timed(lambda: _render(scene, order_spec, "reference"))
                        for _ in range(repeats))
        ms_after = min(_timed(lambda: _render(scene, order_spec, "batched"))
                       for _ in range(repeats))
        result = _render(scene, order_spec, "batched")

        speedup = ms_before / max(ms_after, 1e-9)
        scenes_over_2x += speedup >= 2.0
        per_scene[name] = {
            "order": order_spec[0],
            "n_fragments": int(result.n_fragments),
            "n_accesses": int(result.trace.n_accesses),
            "ms_reference": round(ms_before, 3),
            "ms_batched": round(ms_after, 3),
            "speedup": round(speedup, 2),
            "batched_fragments_per_s": round(
                result.n_fragments / max(ms_after / 1000, 1e-9)),
        }
        totals["before"] += ms_before
        totals["after"] += ms_after
    return {
        "bench": "render_batched",
        "config": {
            "scale": bank.scale,
            "scenes": list(SCENES),
            "orders": {name: per_scene[name]["order"] for name in SCENES},
            "produce_image": False,
            "repeats": repeats,
            "estimator": "min of consecutive repeats per path",
            "equivalence": "bit-identical traces and per-triangle counts",
            "scenes_at_2x_or_better": int(scenes_over_2x),
            "per_scene": per_scene,
        },
        "ms_before": round(totals["before"], 3),
        "ms_after": round(totals["after"], 3),
        "speedup": round(totals["before"] / max(totals["after"], 1e-9), 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="equivalence check only (traces, counts and "
                             "framebuffers), no BENCH_render.json")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed renders per scene per path")
    args = parser.parse_args(argv)

    bank = SceneBank()
    if args.smoke:
        for name in SCENES:
            verify_equivalence(bank.scene(name), paper_order_spec(name),
                               check_image=True)
            print(f"{name}: batched == reference "
                  "(trace, counts, framebuffer)")
        print(f"smoke OK: bit-identical on {len(SCENES)} scenes "
              f"at scale {SCALE}")
        return 0

    report = measure(bank, repeats=args.repeats)
    for name, row in report["config"]["per_scene"].items():
        print(f"{name:8s} reference {row['ms_reference']:8.1f} ms   "
              f"batched {row['ms_batched']:8.1f} ms   "
              f"{row['speedup']:5.2f}x   "
              f"({row['n_fragments']:,} fragments, {row['order']})")
    print(f"total: {report['ms_before']:.1f} ms -> {report['ms_after']:.1f} ms "
          f"({report['speedup']:.2f}x; "
          f"{report['config']['scenes_at_2x_or_better']}/{len(SCENES)} scenes "
          "at >= 2x)")
    RESULT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {RESULT_PATH}")
    return 0


def test_render_batched(bank):
    """Benchmark-suite entry: full measurement plus the JSON artifact."""
    report = measure(bank)
    RESULT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    assert report["speedup"] > 1.0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 6.4: tiled rasterization, padding and 6D blocking versus
conflict misses.

(a) Town, rasterized column-major within and between 8x8 tiles, and
(b) Flight with 8x8 tiles -- comparing the plain blocked representation
against padded (4 pad blocks per block row) and 6D-blocked (superblock
= cache size) layouts, plus the nontiled baseline.  8x8 texel blocks,
128-byte lines, two-way set-associative caches, conflict misses
decomposed with the 3C model.

Paper findings: tiling alone shrinks Town's conflict rate; Flight's
large textures need padding or 6D blocking on top of tiling because a
row of blocks spans a multiple of the cache size.
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import CacheConfig, classify_misses

CACHE_SIZES = [scaled_cache(1024 * k) for k in (4, 8, 16, 32)]
LINE = 128

SCENES = {
    "town": ("tiled", 8, "col", "col"),
    "flight": ("tiled", 8),
}
NONTILED = {"town": ("vertical",), "flight": ("horizontal",)}


def layout_specs(cache_bytes):
    return [
        ("blocked", ("blocked", 8)),
        ("padded", ("padded", 8, 4)),
        ("6d", ("blocked6d", 8, cache_bytes)),
    ]


def measure(bank):
    results = {}
    for scene, tiled_order in SCENES.items():
        for size in CACHE_SIZES:
            config = CacheConfig(size, LINE, 2)
            for label, layout in layout_specs(size):
                streams = bank.streams(scene, tiled_order, layout)
                results[(scene, size, label)] = classify_misses(
                    streams.stream(LINE), config,
                    profile=streams.profile(LINE))
            nontiled_streams = bank.streams(scene, NONTILED[scene], ("blocked", 8))
            results[(scene, size, "nontiled blocked")] = classify_misses(
                nontiled_streams.stream(LINE), config,
                profile=nontiled_streams.profile(LINE))
    return results


def test_fig_6_4(benchmark, bank):
    results = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    sections = []
    variants = ["nontiled blocked", "blocked", "padded", "6d"]
    for scene in SCENES:
        rows = []
        for size in CACHE_SIZES:
            for variant in variants:
                stats = results[(scene, size, variant)]
                rows.append([
                    kb(size), variant, f"{100 * stats.miss_rate:.3f}%",
                    f"{100 * stats.conflict_misses / stats.accesses:.3f}%",
                ])
        sections.append(format_table(
            ["cache", "variant", "miss rate", "conflict rate"], rows,
            title=f"{scene}, 8x8 blocks, {LINE}B lines, 2-way:",
        ))
    text = "\n\n".join(sections)
    text += ("\n\nPaper: tiling reduces same-array block conflicts (Town); "
             "for Flight's large textures, padding or 6D blocking is also "
             "needed.")
    emit("fig_6_4", text)

    def conflict_rate(scene, size, variant):
        stats = results[(scene, size, variant)]
        return stats.conflict_misses / stats.accesses

    # Tiling reduces Town's conflicts vs nontiled-vertical at some size.
    town_gains = [conflict_rate("town", size, "nontiled blocked")
                  - conflict_rate("town", size, "blocked")
                  for size in CACHE_SIZES]
    assert max(town_gains) > 0
    # Padding and 6D blocking help Flight beyond tiling alone.
    flight_blocked = sum(conflict_rate("flight", s, "blocked") for s in CACHE_SIZES)
    flight_padded = sum(conflict_rate("flight", s, "padded") for s in CACHE_SIZES)
    flight_6d = sum(conflict_rate("flight", s, "6d") for s in CACHE_SIZES)
    assert flight_padded < flight_blocked
    assert flight_6d < flight_blocked

"""Extension: two-level texture cache hierarchies.

The paper leaves a tension open: Section 3.2 wants the cache tiny and
on-chip (latency, cost) while Section 5.2.3 wants it to hold the
working set.  A hierarchy resolves it: this harness compares a lone
4 KB-class cache, a lone 32 KB-class cache, and a 4 KB L1 + 32 KB L2
pair on the two scenes with the largest working sets, reporting the
traffic at each boundary.
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import CacheConfig, simulate
from repro.core.hierarchy import hierarchy_bandwidths, simulate_hierarchy
from repro.core.machine import PAPER_MACHINE

SCENES = {"guitar": ("horizontal",), "town": ("vertical",)}
LAYOUT = ("padded", 4, 4)
SAMPLE = 400000

L1_SIZE = scaled_cache(4 * 1024)
L2_SIZE = scaled_cache(32 * 1024)


def measure(bank):
    out = {}
    for scene, order in SCENES.items():
        addresses = bank.trace(scene, order).byte_addresses(
            bank.placements(scene, LAYOUT))[:SAMPLE]
        l1 = CacheConfig(L1_SIZE, 32, 2)
        l2 = CacheConfig(L2_SIZE, 128, 2)
        out[scene] = {
            "lone L1": simulate(addresses, l1),
            "lone L2": simulate(addresses, l2),
            "L1+L2": simulate_hierarchy(addresses, [l1, l2]),
        }
    return out


def test_hierarchy(benchmark, bank):
    out = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = []
    for scene, entries in out.items():
        lone_l1 = entries["lone L1"]
        lone_l2 = entries["lone L2"]
        hierarchy = entries["L1+L2"]
        bandwidths = hierarchy_bandwidths(hierarchy, PAPER_MACHINE)
        accesses_per_second = (PAPER_MACHINE.texels_per_fragment
                               * PAPER_MACHINE.peak_fragments_per_second)
        rows.append([scene, f"lone {kb(L1_SIZE)}/32B",
                     f"{100 * lone_l1.miss_rate:.3f}%",
                     f"{lone_l1.miss_rate * accesses_per_second * 32 / 2**20:.0f} MB/s"])
        rows.append([scene, f"lone {kb(L2_SIZE)}/128B",
                     f"{100 * lone_l2.miss_rate:.3f}%",
                     f"{lone_l2.miss_rate * accesses_per_second * 128 / 2**20:.0f} MB/s"])
        rows.append([scene, f"{kb(L1_SIZE)} L1 + {kb(L2_SIZE)} L2",
                     f"{100 * hierarchy.memory_miss_rate:.3f}% to DRAM",
                     f"{bandwidths[-1] / 2**20:.0f} MB/s DRAM, "
                     f"{bandwidths[0] / 2**20:.0f} MB/s L1-L2"])
    text = format_table(
        ["scene", "organization", "miss rate", "memory traffic @50Mfrag/s"],
        rows,
        title="Single level versus hierarchy:",
    )
    text += ("\n\nThe hierarchy reaches DRAM about as rarely as the lone "
             "large cache while the filter only ever waits on the small "
             "low-latency L1 -- both of the paper's goals at once.")
    emit("hierarchy", text)

    for scene, entries in out.items():
        hierarchy = entries["L1+L2"]
        lone_l2 = entries["lone L2"]
        # The hierarchy's DRAM rate lands in the same regime as the
        # lone L2 (within 2x)...
        assert hierarchy.memory_miss_rate < 2.0 * lone_l2.miss_rate
        # ...and far below the lone L1's.
        assert hierarchy.memory_miss_rate < entries["lone L1"].miss_rate

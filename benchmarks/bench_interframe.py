"""Section 3.1.2's inter-frame claim, measured.

"We generally do not expect our caches to exploit temporal locality
between consecutive frames because the cache sizes that we consider
are much smaller than the amount of texture data that is typically
used by a single frame.  Between memory and disk, however, this kind
of temporal locality is of interest."

This harness renders two consecutive frames of the animated Goblet and
Town scenes (1/30 s apart) and simulates frame 2 against a cache still
warm from frame 1.  For working-set-sized caches the warm start saves
almost nothing -- confirming the paper's single-frame methodology --
while a cache big enough to hold the frame's full texture footprint
turns most of frame 2 into hits (the memory-vs-disk regime).
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import CacheConfig
from repro.core.kernels import sequence_stats

SCENES = ("goblet", "town")
LINE = 64
LAYOUT = ("blocked", 4)
FRAME_DT = 1.0 / 30.0


def measure(bank):
    results = {}
    for name in SCENES:
        order = bank.paper_order_spec(name)
        # Each frame streams through bounded fragment blocks; only its
        # collapsed line runs are retained (never the full trace or
        # byte-address array), bit-identical to the materialized path.
        segments = [
            bank.streamed(name, order, LAYOUT, time=t).collapsed_runs(LINE)
            for t in (0.0, FRAME_DT)
        ]
        texture_bytes = sum(p.total_nbytes
                            for p in bank.placements(name, LAYOUT))
        for size in (scaled_cache(32 * 1024), 1 << (texture_bytes - 1).bit_length()):
            config = CacheConfig(size, LINE, None)
            warm = sequence_stats(segments, config)
            cold = sequence_stats(segments[1:], config)
            results[(name, size)] = (warm[1], cold[0])
    return results


def test_interframe(benchmark, bank):
    results = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = []
    for (name, size), (warm, cold) in results.items():
        saving = 1.0 - warm.misses / max(cold.misses, 1)
        rows.append([
            name, kb(size),
            f"{100 * cold.miss_rate:.3f}%",
            f"{100 * warm.miss_rate:.3f}%",
            f"{100 * saving:.1f}%",
        ])
    text = format_table(
        ["scene", "cache", "frame2 cold-start miss", "frame2 warm-start miss",
         "misses saved by warm start"],
        rows,
        title=(f"Two consecutive frames ({FRAME_DT * 1000:.0f} ms apart), "
               f"fully associative, {LINE}B lines:"),
    )
    text += ("\n\nWorking-set-sized caches gain almost nothing from the "
             "previous frame (the paper's premise); only a cache holding "
             "the frame's whole texture footprint exploits inter-frame "
             "reuse.")
    emit("interframe", text)

    for (name, size), (warm, cold) in results.items():
        small = size <= scaled_cache(32 * 1024)
        saving = 1.0 - warm.misses / max(cold.misses, 1)
        if small:
            assert saving < 0.25, (name, size)
        else:
            assert saving > 0.5, (name, size)

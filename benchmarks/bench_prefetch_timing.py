"""Cycle-level prefetching texture cache: blocked-scan kernel versus
the per-event sequential walk, plus Igehy et al.'s latency-tolerance
curve.

Each paper scene's per-fragment fill counts and page-mode DRAM service
times (:func:`~repro.core.texcache.fragment_fill_streams`) run through
the three-queue timing model (:func:`~repro.core.texcache.sweep_texcache`)
over a fragment-FIFO depth x fill latency grid.  The whole grid is
first computed with ``kernel="reference"`` (one sequential walk per
cell) and with the vectorized lag-blocked scan (one pass per depth
batch, the latency axis as scan rows), asserted cycle-exactly equal on
every metric of every cell, and then timed.

The grid reproduces the Igehy et al. 1998 result that extends the
source paper's Section 7.1.1 premise: once the fragment FIFO is deep
enough to cover the fill latency, the achieved fragment rate stays
flat as the latency grows -- the cache's bandwidth reduction is usable
because prefetching really does hide the latency.  The request FIFO
and reorder buffer are kept generous so the sweep isolates the
fragment-FIFO axis.

Results land in ``BENCH_prefetch_timing.json`` at the repository root
with schema ``{bench, config, curve, ms_before, ms_after, speedup}``;
``curve`` holds the per-scene latency-tolerance rows.  Run directly
(``python benchmarks/bench_prefetch_timing.py``) or through the
benchmark suite; ``--smoke`` runs a reduced grid, skips the JSON and
just checks equivalence.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from paperbench import SceneBank, paper_order_spec, scaled_cache  # noqa: E402

from repro.core import CacheConfig  # noqa: E402
from repro.core.dram import PAPER_DRAM  # noqa: E402
from repro.core.machine import PAPER_MACHINE  # noqa: E402
from repro.core.texcache import fragment_fill_streams, sweep_texcache  # noqa: E402

SCENES = ("flight", "goblet", "guitar", "town")
LAYOUT = ("blocked", 8)
SAMPLE = 400000  # texel accesses per scene (= SAMPLE / 8 fragments)
#: Generous bounded queues so the sweep isolates the fragment-FIFO
#: axis (and fill-cap block splits stay rare in the scan kernel).
QUEUE_DEPTH = 128
DEPTHS = (32, 64, 128, 256, 512, 1024)
SMOKE_DIVISOR = 10
SMOKE_DEPTHS = (8, 64)
SMOKE_LATENCIES = (10, 120)

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_prefetch_timing.json"

METRICS = ("total_cycles", "ideal_cycles", "stall_cycles",
           "fragment_fifo_wait", "request_fifo_wait", "reorder_buffer_wait")


def _cache_config():
    return CacheConfig(scaled_cache(32 * 1024), 64, 2)


def _latencies():
    return sorted({int(round(latency))
                   for latency in np.geomspace(4, 1024, 24)})


def _params(line_size):
    return PAPER_MACHINE.texcache_params(
        line_size, request_fifo=QUEUE_DEPTH, reorder_buffer=QUEUE_DEPTH)


def _assert_grids_equal(fast, slow, scene):
    assert set(fast) == set(slow), scene
    for cell, fast_result in fast.items():
        slow_result = slow[cell]
        for metric in METRICS:
            if getattr(fast_result, metric) != getattr(slow_result, metric):
                raise AssertionError(
                    f"{scene}/{cell}: vectorized {metric} "
                    f"{getattr(fast_result, metric)} != reference "
                    f"{getattr(slow_result, metric)}")


def _timed(run):
    start = time.perf_counter()
    result = run()
    return 1000 * (time.perf_counter() - start), result


def measure(bank, smoke: bool = False) -> dict:
    config = _cache_config()
    params = _params(config.line_size)
    depths = SMOKE_DEPTHS if smoke else DEPTHS
    latencies = list(SMOKE_LATENCIES) if smoke else _latencies()
    sample = SAMPLE // (SMOKE_DIVISOR if smoke else 1)
    per_scene = {}
    curve = {}
    totals = {"before": 0.0, "after": 0.0}
    for scene in SCENES:
        streams = bank.streams(scene, paper_order_spec(scene), LAYOUT)
        counts, services = fragment_fill_streams(
            streams.addresses[:sample], config, dram=PAPER_DRAM)
        ms_before, slow = _timed(lambda: sweep_texcache(
            counts, params, depths, latencies, services=services,
            kernel="reference"))
        ms_after = None
        for _ in range(3):
            elapsed, fast = _timed(lambda: sweep_texcache(
                counts, params, depths, latencies, services=services))
            ms_after = elapsed if ms_after is None else min(ms_after, elapsed)
        _assert_grids_equal(fast, slow, scene)
        per_scene[scene] = {
            "fragments": int(len(counts)),
            "fills": int(counts.sum()),
            "ms_before": round(ms_before, 3),
            "ms_after": round(ms_after, 3),
            "speedup": round(ms_before / max(ms_after, 1e-9), 2),
        }
        totals["before"] += ms_before
        totals["after"] += ms_after
        curve[scene] = [
            {"fragment_fifo": depth, "fill_latency": latency,
             "total_cycles": cell.total_cycles,
             "stall_cycles": cell.stall_cycles,
             "fragments_per_second": round(cell.fragments_per_second),
             "efficiency": round(cell.efficiency, 4)}
            for (depth, latency), cell in fast.items()]
    return {
        "bench": "prefetch_timing",
        "config": {
            "scale": bank.scale,
            "scenes": list(SCENES),
            "layout": list(LAYOUT),
            "cache": config.label(),
            "sample_accesses": sample,
            "depths": list(depths),
            "latencies": list(latencies),
            "request_fifo": QUEUE_DEPTH,
            "reorder_buffer": QUEUE_DEPTH,
            "per_scene": per_scene,
        },
        "curve": curve,
        "ms_before": round(totals["before"], 3),
        "ms_after": round(totals["after"], 3),
        "speedup": round(totals["before"] / max(totals["after"], 1e-9), 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid, equivalence check only "
                             "(no BENCH_prefetch_timing.json)")
    args = parser.parse_args(argv)

    bank = SceneBank()
    report = measure(bank, smoke=args.smoke)
    per_scene = report["config"]["per_scene"]
    detail = ", ".join(f"{scene} {entry['speedup']:.1f}x"
                       for scene, entry in per_scene.items())
    cells = len(report["config"]["depths"]) * len(report["config"]["latencies"])
    print(f"{report['bench']}: {len(SCENES)} scenes x {cells} grid cells, "
          f"reference {report['ms_before']:.1f} ms -> vectorized "
          f"{report['ms_after']:.1f} ms "
          f"({report['speedup']:.1f}x combined; {detail})")
    if args.smoke:
        print("smoke OK: vectorized == reference on every metric of "
              "every grid cell, all scenes")
        return 0
    RESULT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {RESULT_PATH}")
    return 0


def test_prefetch_timing(bank):
    """Benchmark-suite entry: full measurement plus the JSON artifact."""
    report = measure(bank)
    RESULT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    assert report["speedup"] > 1.0


if __name__ == "__main__":
    sys.exit(main())

"""Shared infrastructure for the paper-reproduction benchmarks.

Every file in this directory regenerates one of the paper's tables or
figures.  Rendering a scene is expensive, so all pipeline stages are
obtained through :mod:`repro.engine`: a session-wide :class:`Engine`
memoizes scenes, renders, placements and streams in memory, and the
content-addressed :class:`~repro.engine.ArtifactStore` (default
``benchmarks/.cache/``, relocatable via ``REPRO_CACHE_DIR``) persists
rendered traces, byte-address streams and stack-distance profiles on
disk -- so a warm pytest-benchmark session performs **zero** renders
and reproduces bit-identical numbers.

Scale: ``REPRO_SCALE`` (default 0.25) scales the scenes as described in
DESIGN.md; cache sizes quoted from the paper are scaled linearly with
the same factor (working sets scale with the scan-line texel span), so
"32 KB" at scale 0.25 is benchmarked as 8 KB.  Every harness prints the
paper's published numbers next to the measured ones and writes the
table to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.engine import (
    ArtifactStore,
    Engine,
    TraceSpec,
    layout_from_spec,
    order_from_spec,
    paper_order_spec,
)

#: Reproduction scale (1.0 = the paper's resolutions).
SCALE = float(os.environ.get("REPRO_SCALE", "0.25"))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def scaled_cache(paper_bytes: int) -> int:
    """Scale a paper cache size, rounding to a power of two.

    Working sets scale roughly linearly with the reproduction scale
    (scan-line texel span x line size), so cache capacities quoted from
    the paper are scaled by the same factor.
    """
    target = max(paper_bytes * SCALE, 512)
    exponent = int(round(np.log2(target)))
    return 1 << exponent


def kb(nbytes: int) -> str:
    """Format a byte count the way the paper labels cache sizes."""
    if nbytes >= 1024:
        return f"{nbytes // 1024}KB"
    return f"{nbytes}B"


class SceneBank:
    """Session-wide access to scenes, traces, placements and streams.

    A thin adapter over :class:`repro.engine.Engine` kept for the
    harnesses' vocabulary: methods take (scene name, order spec,
    layout spec) tuples plus optional renderer keyword arguments
    (``time``, ``max_anisotropy``, ``lod_bias``, ``use_mipmaps``,
    ``record_positions``), and every artifact round-trips through the
    shared on-disk store.
    """

    def __init__(self, scale: float = SCALE, store: ArtifactStore = None):
        self.scale = scale
        self.engine = Engine(store=store)

    def _spec(self, name: str, order_spec: tuple, **options) -> TraceSpec:
        return TraceSpec(scene=name, scale=self.scale, order=order_spec,
                         **options)

    def scene(self, name: str):
        return self.engine.scene(name, self.scale)

    def paper_order_spec(self, name: str) -> tuple:
        """The rasterization direction the paper reports for a scene."""
        return paper_order_spec(name)

    def render(self, name: str, order_spec: tuple, **options):
        """RenderResult for (scene, order [, renderer options]), cached."""
        return self.engine.render(self._spec(name, order_spec, **options))

    def trace(self, name: str, order_spec: tuple, **options):
        return self.render(name, order_spec, **options).trace

    def placements(self, name: str, layout_spec: tuple):
        return self.engine.placements(name, self.scale, layout_spec)

    def addresses(self, name: str, order_spec: tuple, layout_spec: tuple,
                  **options):
        """Byte-address stream for (scene, order, layout), cached."""
        return self.engine.addresses(self._spec(name, order_spec, **options),
                                     layout_spec)

    def streams(self, name: str, order_spec: tuple, layout_spec: tuple,
                **options):
        """Byte-address TraceStreams for (scene, order, layout), cached
        together with its per-line-size collapsed streams/profiles."""
        return self.engine.streams(self._spec(name, order_spec, **options),
                                   layout_spec)

    def streamed(self, name: str, order_spec: tuple, layout_spec: tuple,
                 chunk_size: int = None, **options):
        """Constant-memory :class:`~repro.engine.streaming.StreamedProfiles`
        for (scene, order, layout): the trace is consumed as bounded
        fragment blocks, never materialized whole."""
        return self.engine.streamed(self._spec(name, order_spec, **options),
                                    layout_spec, chunk_size=chunk_size)


def emit(experiment: str, text: str) -> None:
    """Print a harness's output and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n=== {experiment} (scale={SCALE}) ===\n"
    print(banner + text)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(banner + text + "\n")


__all__ = [
    "SCALE",
    "RESULTS_DIR",
    "SceneBank",
    "emit",
    "kb",
    "layout_from_spec",
    "order_from_spec",
    "scaled_cache",
]

"""Shared infrastructure for the paper-reproduction benchmarks.

Every file in this directory regenerates one of the paper's tables or
figures.  Rendering a scene is expensive, so a session-scoped
:class:`SceneBank` caches rendered traces per (scene, traversal order)
and byte-address streams per (scene, order, layout); stack-distance
profiles are cached inside :class:`repro.core.TraceStreams`.

Scale: ``REPRO_SCALE`` (default 0.25) scales the scenes as described in
DESIGN.md; cache sizes quoted from the paper are scaled linearly with
the same factor (working sets scale with the scan-line texel span), so
"32 KB" at scale 0.25 is benchmarked as 8 KB.  Every harness prints the
paper's published numbers next to the measured ones and writes the
table to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro import (
    ALL_SCENES,
    TraceStreams,
    make_layout,
    make_order,
    place_textures,
    render_trace,
)

#: Reproduction scale (1.0 = the paper's resolutions).
SCALE = float(os.environ.get("REPRO_SCALE", "0.25"))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def scaled_cache(paper_bytes: int) -> int:
    """Scale a paper cache size, rounding to a power of two.

    Working sets scale roughly linearly with the reproduction scale
    (scan-line texel span x line size), so cache capacities quoted from
    the paper are scaled by the same factor.
    """
    target = max(paper_bytes * SCALE, 512)
    exponent = int(round(np.log2(target)))
    return 1 << exponent


def kb(nbytes: int) -> str:
    """Format a byte count the way the paper labels cache sizes."""
    if nbytes >= 1024:
        return f"{nbytes // 1024}KB"
    return f"{nbytes}B"


def order_from_spec(spec):
    """Build a TraversalOrder from a hashable spec tuple.

    ``("horizontal",)``, ``("vertical",)``, ``("tiled", 8)``,
    ``("tiled", 8, "col", "col")``, ``("hilbert", 11)``.
    """
    name = spec[0]
    if name == "tiled":
        kwargs = {"tile_w": spec[1]}
        if len(spec) > 2:
            kwargs["within"] = spec[2]
            kwargs["across"] = spec[3]
        return make_order("tiled", **kwargs)
    if name == "hilbert":
        return make_order("hilbert", order_bits=spec[1])
    return make_order(name)


def layout_from_spec(spec):
    """Build a TextureLayout from a hashable spec tuple.

    ``("nonblocked",)``, ``("blocked", 8)``, ``("padded", 8, 4)``,
    ``("blocked6d", 8, 32768)``, ``("williams",)``.
    """
    name = spec[0]
    if name == "blocked":
        return make_layout("blocked", block_w=spec[1])
    if name == "padded":
        return make_layout("padded", block_w=spec[1], pad_blocks=spec[2])
    if name == "blocked6d":
        return make_layout("blocked6d", block_w=spec[1], superblock_nbytes=spec[2])
    return make_layout(name)


class SceneBank:
    """Session-wide cache of scenes, traces, placements and streams."""

    def __init__(self, scale: float = SCALE):
        self.scale = scale
        self._scenes = {}
        self._results = {}
        self._placements = {}
        self._streams = {}

    def scene(self, name: str):
        if name not in self._scenes:
            self._scenes[name] = ALL_SCENES[name]().build(scale=self.scale)
        return self._scenes[name]

    def paper_order_spec(self, name: str) -> tuple:
        """The rasterization direction the paper reports for a scene."""
        return (self.scene(name).paper_rasterization,)

    def render(self, name: str, order_spec: tuple):
        """RenderResult for (scene, order), cached."""
        key = (name, order_spec)
        if key not in self._results:
            order = order_from_spec(order_spec)
            self._results[key] = render_trace(self.scene(name), order=order)
        return self._results[key]

    def trace(self, name: str, order_spec: tuple):
        return self.render(name, order_spec).trace

    def placements(self, name: str, layout_spec: tuple):
        key = (name, layout_spec)
        if key not in self._placements:
            layout = layout_from_spec(layout_spec)
            self._placements[key] = place_textures(
                self.scene(name).get_mipmaps(), layout)
        return self._placements[key]

    def streams(self, name: str, order_spec: tuple, layout_spec: tuple) -> TraceStreams:
        """Byte-address TraceStreams for (scene, order, layout), cached
        together with its per-line-size collapsed streams/profiles."""
        key = (name, order_spec, layout_spec)
        if key not in self._streams:
            addresses = self.trace(name, order_spec).byte_addresses(
                self.placements(name, layout_spec))
            self._streams[key] = TraceStreams(addresses)
        return self._streams[key]


def emit(experiment: str, text: str) -> None:
    """Print a harness's output and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n=== {experiment} (scale={SCALE}) ===\n"
    print(banner + text)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(banner + text + "\n")

"""Table 2.1: computational costs of the fragment generator.

Regenerates the paper's per-phase operation-count table, resolving the
"texel address calculation" row (which the paper leaves layout-
dependent) for each memory representation studied in Sections 5-6.
"""

from paperbench import emit

from repro.analysis import format_table
from repro.pipeline.costs import PHASE_TABLE, fragment_cost
from repro.texture.layout import (
    Blocked6DLayout,
    BlockedLayout,
    NonblockedLayout,
    PaddedBlockedLayout,
    WilliamsLayout,
)

LAYOUTS = [
    NonblockedLayout(),
    BlockedLayout(8),
    PaddedBlockedLayout(8, pad_blocks=4),
    Blocked6DLayout(8, superblock_nbytes=32 * 1024),
    WilliamsLayout(),
]


def build_tables():
    phase_rows = [
        [name, ops.adds, ops.shifts, ops.multiplies, ops.divides,
         ops.memory_accesses or "-"]
        for name, ops in PHASE_TABLE.items()
    ]
    layout_rows = []
    for layout in LAYOUTS:
        cost = layout.addressing_cost()
        per_fragment = fragment_cost(layout)
        layout_rows.append([
            layout.name, cost.adds, cost.shifts, cost.const_shifts,
            cost.accesses_per_texel, per_fragment.adds, per_fragment.total_ops,
        ])
    return phase_rows, layout_rows


def test_table_2_1(benchmark):
    phase_rows, layout_rows = benchmark.pedantic(build_tables, rounds=1,
                                                 iterations=1)
    text = format_table(
        ["phase", "add/sub", "shift", "mult", "div", "mem accesses"],
        phase_rows,
        title="Per-phase costs (per fragment; setup per triangle):",
    )
    text += "\n\n" + format_table(
        ["representation", "adds/texel", "var shifts", "const shifts",
         "accesses/texel", "frag adds", "frag total ops"],
        layout_rows,
        title="Texel address calculation by memory representation:",
    )
    text += ("\n\nPaper: blocked costs two additions over the base\n"
             "representation; padding one more; 6D blocking two more\n"
             "(Sections 5.3.1, 6.2).")
    emit("table_2_1", text)

    # Guard the paper's stated overheads.
    costs = {layout.name: layout.addressing_cost() for layout in LAYOUTS}
    base = costs["nonblocked"].adds
    assert costs["blocked8x8"].adds == base + 2
    assert costs["padded8x8+4"].adds == base + 3
    assert costs[LAYOUTS[3].name].adds == base + 4

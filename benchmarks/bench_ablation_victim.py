"""Ablation: victim buffers versus set associativity.

Section 5.3.3's conflict misses are cured in the paper by 2-way set
associativity.  A period-typical alternative is Jouppi's victim cache:
keep the main cache direct-mapped (faster, simpler) and absorb the
conflict ping-pong in a tiny fully-associative buffer of recently
evicted lines.  This harness asks how many victim entries it takes to
match 2-way associativity on the paper's two conflict workloads.
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import CacheConfig, simulate
from repro.core.victim import simulate_victim

LINE = 128
LAYOUT = ("blocked", 8)
VICTIMS = (0, 1, 2, 4, 8)
SCENES = {"goblet": ("horizontal",), "town": ("vertical",)}


def measure(bank):
    out = {}
    for scene, order in SCENES.items():
        streams = bank.streams(scene, order, LAYOUT)
        stream = streams.stream(LINE)
        size = scaled_cache(8 * 1024)
        direct_config = CacheConfig(size, LINE, 1)
        rows = {}
        for victims in VICTIMS:
            rows[victims] = simulate_victim(stream, direct_config, victims)
        two_way = simulate(stream, CacheConfig(size, LINE, 2))
        out[scene] = (rows, two_way, size)
    return out


def test_ablation_victim(benchmark, bank):
    out = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = []
    for scene, (victim_rows, two_way, size) in out.items():
        for victims, stats in victim_rows.items():
            rows.append([
                scene, kb(size), f"direct + {victims} victims",
                f"{100 * stats.miss_rate:.3f}%",
                f"{100 * stats.victim_hit_rate:.3f}%",
            ])
        rows.append([scene, kb(size), "2-way (paper)",
                     f"{100 * two_way.miss_rate:.3f}%", "-"])
    text = format_table(
        ["scene", "cache", "organization", "memory miss rate", "victim hits"],
        rows,
        title=f"8x8 blocks, {LINE}B lines:",
    )
    text += ("\n\nA handful of victim entries recovers most of the "
             "conflict misses the paper cures with 2-way associativity -- "
             "Mip-level ping-pong (Goblet) is a textbook victim-cache "
             "workload.")
    emit("ablation_victim", text)

    for scene, (victim_rows, two_way, _) in out.items():
        # Victim buffers monotonically reduce memory traffic...
        rates = [victim_rows[v].miss_rate for v in VICTIMS]
        assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))
        # ...and 8 entries get within 1.35x of 2-way associativity.
        assert victim_rows[8].miss_rate < 1.35 * two_way.miss_rate + 1e-9

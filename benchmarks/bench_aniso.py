"""Extension: anisotropic filtering versus the texture cache.

The generation of hardware after the paper added anisotropic filtering
(up to N trilinear probes along the footprint's major axis).  Each
probe multiplies texture traffic, so the natural question is whether
the paper's cache conclusions survive: does the working-set/locality
structure still absorb the extra fetches, or does anisotropy re-open
the bandwidth gap the cache closed?

Flight is the stress case: grazing-angle terrain has footprint aspect
ratios far beyond 1.
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import CacheConfig, simulate
from repro.core.bandwidth import mbytes_per_second
from repro.core.machine import PAPER_MACHINE

SCENE = "flight"
ORDER = ("tiled", 8)
LAYOUT = ("padded", 8, 4)
LINE = 128
ANISO = (1, 2, 4, 8)


def measure(bank):
    config = CacheConfig(scaled_cache(32 * 1024), LINE, 2)
    results = {}
    for aniso in ANISO:
        result = bank.render(SCENE, ORDER, max_anisotropy=aniso)
        addresses = bank.addresses(SCENE, ORDER, LAYOUT, max_anisotropy=aniso)
        stats = simulate(addresses, config)
        results[aniso] = (result, stats)
    return results


def test_aniso(benchmark, bank):
    results = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    base_accesses = results[1][0].n_accesses
    rows = []
    for aniso, (render, stats) in results.items():
        accesses_per_fragment = render.n_accesses / render.n_fragments
        # Bandwidth at a fixed 50M fragments/s: more texels per
        # fragment means proportionally more cache accesses per second.
        fetch_rate = accesses_per_fragment * PAPER_MACHINE.peak_fragments_per_second
        bandwidth = stats.miss_rate * fetch_rate * LINE
        rows.append([
            f"{aniso}x", f"{accesses_per_fragment:.1f}",
            f"{render.n_accesses / base_accesses:.2f}x",
            f"{100 * stats.miss_rate:.3f}%",
            f"{mbytes_per_second(bandwidth):.0f} MB/s",
        ])
    text = format_table(
        ["anisotropy", "texels/fragment", "traffic vs trilinear",
         "miss rate", "bandwidth @50Mfrag/s"],
        rows,
        title=(f"{SCENE}, {kb(scaled_cache(32 * 1024))} 2-way cache, "
               f"{LINE}B lines, padded 8x8 blocks:"),
    )
    uncached_8x = (results[ANISO[-1]][0].n_accesses
                   / results[ANISO[-1]][0].n_fragments
                   * PAPER_MACHINE.peak_fragments_per_second * 4)
    text += (f"\n\nTwo effects: probe overlap is cached (fetches grow "
             f"{results[ANISO[-1]][0].n_accesses / base_accesses:.1f}x, "
             "not 8x), but probes also use *finer* mip levels, enlarging "
             "the working set, so the miss rate creeps up rather than "
             "down.  The cache still wins decisively: at 8x anisotropy "
             "an uncached system would need "
             f"{mbytes_per_second(uncached_8x):.0f} MB/s.")
    emit("aniso", text)

    iso_stats = results[1][1]
    top_render, top_stats = results[ANISO[-1]]
    # Fetches grow substantially at 8x but saturate well below 8x
    # (most footprints need few probes).
    assert 1.2 * base_accesses < top_render.n_accesses < 4.0 * base_accesses
    # Finer mip levels enlarge the working set: miss rate rises, but
    # only modestly (the probe overlap is absorbed by the cache).
    assert top_stats.miss_rate < 1.6 * iso_stats.miss_rate
    # The cached system at 8x stays far below the uncached requirement.
    top_bandwidth = (top_stats.miss_rate
                     * top_render.n_accesses / top_render.n_fragments
                     * PAPER_MACHINE.peak_fragments_per_second * LINE)
    assert top_bandwidth < 0.7 * uncached_8x
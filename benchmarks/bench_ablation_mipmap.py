"""Ablation: is mip mapping what makes texture caching work?

Section 3.1.1: "The representation of textures as Mip Maps contributes
to spatial locality in texture accesses...  movements of one pixel in
screen space roughly correspond to movements of one texel in texture
space...  The spatial locality in Mip Map accesses is thus present
irrespective of the scene."

The ablation: filter with GL_LINEAR (bilinear from level 0, no
pyramid).  Minified surfaces then stride across level 0 -- one pixel
step skips many texels -- destroying the spatial locality the cache
depends on, even though each fragment makes *fewer* fetches (4 vs 8).
"""

from paperbench import emit, kb, scaled_cache

from repro.analysis import format_table
from repro.core import miss_rate_curve

CACHE_SIZES = sorted({scaled_cache(1024 * k) for k in (1, 4, 16, 64)})
LINE = 64
LAYOUT = ("blocked", 4)
SCENES = {"town": ("vertical",), "flight": ("horizontal",)}


def measure(bank):
    out = {}
    for scene_name, order in SCENES.items():
        for label, kwargs in (("mipmapped trilinear", {}),
                              ("GL_LINEAR level 0", {"use_mipmaps": False})):
            result = bank.render(scene_name, order, **kwargs)
            streams = bank.streams(scene_name, order, LAYOUT, **kwargs)
            curve = miss_rate_curve(streams, LINE, CACHE_SIZES)
            out[(scene_name, label)] = (result, curve)
    return out


def test_ablation_mipmap(benchmark, bank):
    out = benchmark.pedantic(measure, args=(bank,), rounds=1, iterations=1)

    rows = []
    for (scene, label), (result, curve) in out.items():
        rows.append(
            [scene, label, f"{result.n_accesses / result.n_fragments:.1f}"]
            + [f"{100 * r:.2f}%" for r in curve.miss_rates]
        )
    text = format_table(
        ["scene", "filtering", "fetch/frag"] + [kb(s) for s in CACHE_SIZES],
        rows,
        title=f"Fully associative, {LINE}B lines, blocked 4x4:",
    )
    text += ("\n\nWithout the pyramid each fragment fetches half as many "
             "texels yet misses far more often: minified surfaces stride "
             "across level 0 and every fetch is a fresh line.  Mip "
             "mapping is a prerequisite for texture caching, exactly as "
             "Section 3.1.1 argues.")
    emit("ablation_mipmap", text)

    for scene in SCENES:
        mip = out[(scene, "mipmapped trilinear")][1]
        linear = out[(scene, "GL_LINEAR level 0")][1]
        # Per-access miss rates are worse without the pyramid at every
        # size, and multiples worse once the cache holds the mipmapped
        # working set.  (Flight's strong minification shows 5-6x;
        # Town's near facades are magnified anyway, so its gap is
        # smaller at tiny caches.)
        for index in range(len(CACHE_SIZES)):
            assert linear.miss_rates[index] > mip.miss_rates[index], (scene, index)
        assert linear.miss_rates[-1] > 1.8 * mip.miss_rates[-1], scene
        # Per-fragment traffic is also worse: 4 fetches at the higher
        # miss rate beat 8 at the lower one.
        mip_result = out[(scene, "mipmapped trilinear")][0]
        lin_result = out[(scene, "GL_LINEAR level 0")][0]
        mip_traffic = mip.miss_rates[-1] * mip_result.n_accesses
        lin_traffic = linear.miss_rates[-1] * lin_result.n_accesses
        assert lin_traffic > mip_traffic
    assert out[("flight", "GL_LINEAR level 0")][1].miss_rates[-1] > \
        4.0 * out[("flight", "mipmapped trilinear")][1].miss_rates[-1]
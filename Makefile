# Convenience targets for the texture-cache reproduction.

PYTHON ?= python
SCALE ?= 0.25

.PHONY: install test bench examples gallery clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	REPRO_SCALE=$(SCALE) $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	cd /tmp && for ex in quickstart layout_explorer flight_flyover \
		tile_tuning parallel_generators animation render_to_texture; do \
		$(PYTHON) $(CURDIR)/examples/$$ex.py || exit 1; done

gallery:
	$(PYTHON) examples/render_gallery.py gallery $(SCALE)

clean:
	rm -rf gallery benchmarks/results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +

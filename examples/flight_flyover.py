#!/usr/bin/env python
"""The paper's motivating workload: a terrain flyover.

Renders the Flight benchmark (satellite-textured mountainous terrain
with large level-of-detail variation), saves the frame, and reports the
numbers a hardware architect would want: per-mip-level access spread,
working set estimate, and the bandwidth a texture cache saves at the
paper's 50 Mfragment/s machine model.

Run:  python examples/flight_flyover.py [scale]
"""

import sys

import numpy as np

from repro import (
    CacheConfig,
    FlightScene,
    PaddedBlockedLayout,
    Renderer,
    TiledOrder,
    cached_bandwidth,
    mbytes_per_second,
    miss_rate_curve,
    place_textures,
    simulate,
    uncached_bandwidth,
)
from repro.analysis import first_working_set, format_table, level_histogram


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25

    scene = FlightScene().build(scale=scale)
    result = Renderer(order=TiledOrder(8), produce_image=True).render(scene)
    result.framebuffer.to_png("flight.png")
    print(f"flight at {scene.width}x{scene.height}: "
          f"{result.n_fragments:,} fragments, {scene.n_textures} satellite "
          f"textures ({scene.texture_storage_nbytes / 2**20:.1f} MB) -> flight.png")

    # Level-of-detail spread: the terrain's signature.
    histogram = level_histogram(result.trace)
    total = histogram.sum()
    rows = [[level, count, f"{100 * count / total:.1f}%"]
            for level, count in enumerate(histogram) if count]
    print(format_table(["mip level", "texel fetches", "share"], rows,
                       title="\nAccesses by Mip Map level (LoD variation)"))

    # Working set and bandwidth.
    layout = PaddedBlockedLayout(block_w=4, pad_blocks=4)
    placements = place_textures(scene.get_mipmaps(), layout)
    addresses = result.trace.byte_addresses(placements)
    sizes = [1024 * k for k in (1, 2, 4, 8, 16, 32, 64)]
    curve = miss_rate_curve(addresses, 64, sizes)
    working_set = first_working_set(curve)
    print(f"\nfirst working set ~{working_set.size // 1024} KB "
          f"(miss rate {100 * working_set.miss_rate_before:.2f}% -> "
          f"{100 * working_set.miss_rate_after:.2f}%)")

    config = CacheConfig(size=max(working_set.size * 2, 4096), line_size=64, assoc=2)
    stats = simulate(addresses, config)
    saved = uncached_bandwidth() - cached_bandwidth(stats.miss_rate, 64)
    print(f"a {config.label()} cache cuts texture bandwidth by "
          f"{mbytes_per_second(saved):.0f} MB/s "
          f"({uncached_bandwidth() / cached_bandwidth(stats.miss_rate, 64):.1f}x)")


if __name__ == "__main__":
    main()

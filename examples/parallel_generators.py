#!/usr/bin/env python
"""Parallel texture caching (paper Section 8's open question).

Splits a frame across multiple fragment generators, each with a private
texture cache over one shared texture memory (no replication, unlike
the RealityEngine), and shows the balance-versus-locality trade-off of
different work distributions.

Run:  python examples/parallel_generators.py [scene] [scale]
"""

import sys

from repro import CacheConfig, Renderer, TiledOrder, make_scene, place_textures
from repro.analysis import format_table
from repro.core.parallel import (
    ScanlineInterleave,
    StripSplit,
    TileInterleave,
    simulate_parallel,
)
from repro.texture import PaddedBlockedLayout


def main() -> None:
    scene_name = sys.argv[1] if len(sys.argv) > 1 else "town"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

    scene = make_scene(scene_name).build(scale=scale)
    renderer = Renderer(order=TiledOrder(8), produce_image=False,
                        record_positions=True)
    trace = renderer.render(scene).trace
    placements = place_textures(scene.get_mipmaps(),
                                PaddedBlockedLayout(4, pad_blocks=4))
    config = CacheConfig(size=8 * 1024, line_size=64, assoc=2)

    rows = []
    for n in (2, 4, 8):
        for distribution in (ScanlineInterleave(n),
                             TileInterleave(n, tile=8),
                             TileInterleave(n, tile=32),
                             StripSplit(n, height=scene.height)):
            stats = simulate_parallel(trace, placements, distribution, config)
            rows.append([
                n, distribution.name,
                f"{100 * stats.aggregate_miss_rate:.3f}%",
                f"{stats.redundancy:.2f}x",
                f"{stats.load_imbalance:.2f}x",
                f"{stats.shared_memory_bandwidth() / 2**20:.0f} MB/s",
            ])
    print(format_table(
        ["generators", "distribution", "miss rate", "data fetched redundantly",
         "load imbalance", "shared-memory bandwidth"],
        rows,
        title=(f"{scene_name}: private {config.label()} caches, shared "
               "texture memory, every generator at 50M fragments/s"),
    ))
    print("\nFiner interleaving balances load but fragments each cache's "
          "spatial locality; strips keep locality but can idle "
          "generators. Medium tiles are the compromise GPUs settled on.")


if __name__ == "__main__":
    main()

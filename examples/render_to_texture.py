#!/usr/bin/env python
"""Rendered images as textures (paper Section 3.2).

The paper motivates unifying framebuffer and texture memory: with a
texture cache in front of shared DRAM, a rendered frame can be textured
from directly, flushing the cache instead of copying the data.  This
example runs that pipeline: pass 1 renders the Goblet; pass 2 maps the
result onto screens in the Town scene, then reports the cache cost of
texturing from the freshly rendered (never-before-cached) image.

Run:  python examples/render_to_texture.py [scale]
"""

import sys

import numpy as np

from repro import (
    CacheConfig,
    GobletScene,
    Renderer,
    TownScene,
    make_quad,
    place_textures,
    simulate,
)
from repro.geometry.mesh import Mesh
from repro.scenes.base import SceneData
from repro.texture import PaddedBlockedLayout, framebuffer_to_texture


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25

    # Pass 1: render the goblet.
    goblet = GobletScene().build(scale=scale)
    pass1 = Renderer(produce_image=True).render(goblet)
    screen_texture = framebuffer_to_texture(pass1.framebuffer, name="pass1")
    print(f"pass 1: goblet at {goblet.width}x{goblet.height} -> "
          f"{screen_texture.width}x{screen_texture.height} texture")

    # Pass 2: hang the rendered frame on billboards inside the town.
    town = TownScene().build(scale=scale)
    billboard_texture_id = town.textures.add(screen_texture)
    billboards = []
    for x_center, depth in ((-1.8, -20.0), (1.8, -35.0)):
        billboards.append(make_quad(
            np.array([
                [x_center - 1.6, 1.0, depth],
                [x_center + 1.6, 1.0, depth],
                [x_center + 1.6, 4.2, depth],
                [x_center - 1.6, 4.2, depth],
            ]),
            texture_id=billboard_texture_id,
        ))
    scene2 = SceneData(
        name="town+billboards", width=town.width, height=town.height,
        mesh=Mesh.concat([town.mesh] + billboards),
        textures=town.textures, view=town.view, projection=town.projection,
    )
    pass2 = Renderer(produce_image=True).render(scene2)
    pass2.framebuffer.to_png("render_to_texture.png")
    print(f"pass 2: {pass2.n_fragments:,} fragments -> render_to_texture.png")

    # Cache cost: the billboard texture was just written by pass 1, so
    # (after the flush the paper prescribes) its lines are all cold.
    placements = place_textures(scene2.get_mipmaps(),
                                PaddedBlockedLayout(4, pad_blocks=4))
    addresses = pass2.trace.byte_addresses(placements)
    stats = simulate(addresses, CacheConfig(16 * 1024, 64, 2))
    billboard_mask = pass2.trace.texture_id == billboard_texture_id
    print(f"pass 2 cache: miss rate {100 * stats.miss_rate:.2f}% over "
          f"{stats.accesses:,} fetches; {int(billboard_mask.sum()):,} of them "
          "sample the freshly rendered texture (no copy was made)")


if __name__ == "__main__":
    main()

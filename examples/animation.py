#!/usr/bin/env python
"""Render an animation and study inter-frame cache behaviour.

Renders several consecutive frames of an animated benchmark scene
(30 fps camera motion), writes them as PNGs, and measures how much a
texture cache retained between frames would help -- the paper's
Section 3.1.2 premise that working-set-sized caches cannot exploit
inter-frame locality, while frame-footprint-sized memories can.

Run:  python examples/animation.py [scene] [n_frames] [scale]
"""

import sys

from repro import CacheConfig, Renderer, TiledOrder, make_scene, place_textures
from repro.analysis import format_table
from repro.core.cache import simulate_sequence
from repro.texture import PaddedBlockedLayout


def main() -> None:
    scene_name = sys.argv[1] if len(sys.argv) > 1 else "goblet"
    n_frames = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.2

    generator = make_scene(scene_name)
    renderer = Renderer(order=TiledOrder(8), produce_image=True)
    layout = PaddedBlockedLayout(4, pad_blocks=4)

    placements = None
    segments = []
    for frame in range(n_frames):
        scene = generator.build(scale=scale, time=frame / 30.0)
        result = renderer.render(scene)
        path = f"{scene_name}_{frame:02d}.png"
        result.framebuffer.to_png(path)
        if placements is None:
            placements = place_textures(scene.get_mipmaps(), layout)
        segments.append(result.trace.byte_addresses(placements))
        print(f"frame {frame}: {result.n_fragments:,} fragments -> {path}")

    texture_bytes = sum(p.total_nbytes for p in placements)
    rows = []
    for label, size in [("working-set cache", 8 * 1024),
                        ("frame-footprint cache",
                         1 << (texture_bytes - 1).bit_length())]:
        config = CacheConfig(size, 64, None)
        warm = simulate_sequence(segments, config)
        rows.append([label, f"{size // 1024}KB"]
                    + [f"{100 * s.miss_rate:.3f}%" for s in warm])
    print(format_table(
        ["cache", "size"] + [f"frame {i}" for i in range(n_frames)],
        rows,
        title="\nMiss rate per frame with the cache kept warm between frames:",
    ))
    print("\nThe small cache's miss rate never improves after frame 0 "
          "(no inter-frame reuse fits); the big one drops to near zero "
          "-- the paper's memory-vs-disk distinction.")


if __name__ == "__main__":
    main()

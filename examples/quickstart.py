#!/usr/bin/env python
"""Quickstart: render a scene, simulate its texture cache, report.

Renders the Goblet benchmark through the software graphics pipeline,
maps the texel trace onto a blocked texture layout, simulates the
paper's recommended cache (16 KB, 2-way, 64-byte lines) and prints the
miss rate and memory bandwidth, plus the uncached comparison.

Run:  python examples/quickstart.py [scale]
"""

import sys

from repro import (
    CacheConfig,
    GobletScene,
    PaddedBlockedLayout,
    Renderer,
    TiledOrder,
    cached_bandwidth,
    mbytes_per_second,
    place_textures,
    simulate,
    uncached_bandwidth,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25

    # 1. Build the scene and render one frame, recording every texel
    #    fetch made by the trilinear filter.
    scene = GobletScene().build(scale=scale)
    renderer = Renderer(order=TiledOrder(8), produce_image=True)
    result = renderer.render(scene)
    result.framebuffer.to_png("goblet.png")
    print(f"rendered {scene.name} at {scene.width}x{scene.height}: "
          f"{result.n_fragments:,} textured fragments, "
          f"{result.n_accesses:,} texel fetches -> goblet.png")

    # 2. Choose a memory representation and map the trace to addresses.
    layout = PaddedBlockedLayout(block_w=4, pad_blocks=4)
    placements = place_textures(scene.get_mipmaps(), layout)
    addresses = result.trace.byte_addresses(placements)

    # 3. Simulate the texture cache.
    config = CacheConfig(size=16 * 1024, line_size=64, assoc=2)
    stats = simulate(addresses, config)
    print(f"cache {config.label()}: miss rate {100 * stats.miss_rate:.2f}% "
          f"({stats.misses:,} misses, {stats.cold_misses:,} cold)")

    # 4. Translate to memory bandwidth at 50 M fragments/second.
    cached = cached_bandwidth(stats.miss_rate, config.line_size)
    uncached = uncached_bandwidth()
    print(f"bandwidth: {mbytes_per_second(cached):.0f} MB/s with cache vs "
          f"{mbytes_per_second(uncached):.0f} MB/s without "
          f"({uncached / cached:.1f}x reduction)")


if __name__ == "__main__":
    main()

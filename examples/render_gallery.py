#!/usr/bin/env python
"""Render the full benchmark-scene gallery to PNG files.

Writes one frame per scene (plus a Hilbert-order traversal
visualization of the screen) into the chosen output directory --
the quickest way to eyeball that the pipeline and the procedural
scene stand-ins are behaving.

Run:  python examples/render_gallery.py [out_dir] [scale]
"""

import os
import sys

import numpy as np

from repro import ALL_SCENES, Renderer
from repro.raster.framebuffer import Framebuffer
from repro.raster.order import _hilbert_d


def hilbert_poster(side_bits: int = 6) -> Framebuffer:
    """A visualization of the Hilbert traversal order (footnote 1)."""
    side = 1 << side_bits
    framebuffer = Framebuffer(side * 4, side * 4)
    ys, xs = np.mgrid[0:side, 0:side]
    order = _hilbert_d(side_bits, xs.ravel(), ys.ravel()).reshape(side, side)
    shade = (order / order.max() * 255).astype(np.uint8)
    big = np.repeat(np.repeat(shade, 4, axis=0), 4, axis=1)
    framebuffer.pixels[..., 0] = big
    framebuffer.pixels[..., 1] = 255 - big
    framebuffer.pixels[..., 2] = 128
    return framebuffer


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "gallery"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    os.makedirs(out_dir, exist_ok=True)

    renderer = Renderer(produce_image=True)
    for name, cls in ALL_SCENES.items():
        scene = cls().build(scale=scale)
        result = renderer.render(scene)
        path = os.path.join(out_dir, f"{name}.png")
        result.framebuffer.to_png(path)
        print(f"{name}: {scene.width}x{scene.height}, "
              f"{result.n_fragments:,} fragments -> {path}")

    poster = hilbert_poster()
    poster_path = os.path.join(out_dir, "hilbert_order.png")
    poster.to_png(poster_path)
    print(f"hilbert traversal poster -> {poster_path}")


if __name__ == "__main__":
    main()

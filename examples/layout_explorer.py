#!/usr/bin/env python
"""Compare texture memory representations on one scene.

Renders the Town benchmark with the paper's worst-case vertical
rasterization and pits all five memory representations (Williams,
nonblocked, blocked, padded, 6D-blocked) against each other across
cache sizes -- the Section 5 study in one script.

Run:  python examples/layout_explorer.py [scene] [scale]
"""

import sys

from repro import (
    TraceStreams,
    VerticalOrder,
    make_layout,
    make_scene,
    miss_rate_curve,
    place_textures,
    render_trace,
)
from repro.analysis import format_table

LAYOUTS = [
    ("williams", {}),
    ("nonblocked", {}),
    ("blocked", {"block_w": 4}),
    ("padded", {"block_w": 4, "pad_blocks": 4}),
    ("blocked6d", {"block_w": 4, "superblock_nbytes": 8192}),
]


def main() -> None:
    scene_name = sys.argv[1] if len(sys.argv) > 1 else "town"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

    scene = make_scene(scene_name).build(scale=scale)
    result = render_trace(scene, order=VerticalOrder())
    print(f"{scene_name} at {scene.width}x{scene.height}, vertical "
          f"rasterization: {result.n_accesses:,} texel fetches")

    line_size = 64
    cache_sizes = [1024, 2048, 4096, 8192, 16384, 32768]
    rows = []
    for spec, kwargs in LAYOUTS:
        layout = make_layout(spec, **kwargs)
        placements = place_textures(scene.get_mipmaps(), layout)
        addresses = result.trace.byte_addresses(placements)
        curve = miss_rate_curve(TraceStreams(addresses).stream(line_size),
                                line_size, cache_sizes)
        rows.append([layout.name] + [f"{100 * r:.2f}%" for r in curve.miss_rates])

    headers = ["layout"] + [f"{s // 1024}KB" for s in cache_sizes]
    print(format_table(headers, rows,
                       title=f"\nMiss rates, fully associative, {line_size}B lines"))
    print("\nNote: Williams' representation needs three accesses per "
          "texel, so equal miss rates still mean 3x the traffic.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Compare texture memory representations on one scene.

Renders the Town benchmark with the paper's worst-case vertical
rasterization and pits all five memory representations (Williams,
nonblocked, blocked, padded, 6D-blocked) against each other across
cache sizes -- the Section 5 study in one script.

All pipeline stages go through :mod:`repro.engine`, so the render and
every byte-address stream land in the content-addressed artifact store
(``benchmarks/.cache/`` or ``$REPRO_CACHE_DIR``): a second run of this
script performs zero renders.

Run:  python examples/layout_explorer.py [scene] [scale]
"""

import sys

from repro.analysis import format_table
from repro.core import miss_rate_curve
from repro.engine import Engine, TraceSpec

LAYOUTS = [
    ("williams",),
    ("nonblocked",),
    ("blocked", 4),
    ("padded", 4, 4),
    ("blocked6d", 4, 8192),
]


def main() -> None:
    scene_name = sys.argv[1] if len(sys.argv) > 1 else "town"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

    engine = Engine()
    spec = TraceSpec(scene=scene_name, scale=scale, order=("vertical",))
    scene = engine.scene(scene_name, scale)
    result = engine.render(spec)
    print(f"{scene_name} at {scene.width}x{scene.height}, vertical "
          f"rasterization: {result.n_accesses:,} texel fetches")

    line_size = 64
    cache_sizes = [1024, 2048, 4096, 8192, 16384, 32768]
    rows = []
    for layout_spec in LAYOUTS:
        streams = engine.streams(spec, layout_spec)
        curve = miss_rate_curve(streams, line_size, cache_sizes)
        rows.append([layout_spec[0]]
                    + [f"{100 * r:.2f}%" for r in curve.miss_rates])

    headers = ["layout"] + [f"{s // 1024}KB" for s in cache_sizes]
    print(format_table(headers, rows,
                       title=f"\nMiss rates, fully associative, {line_size}B lines"))
    print("\nNote: Williams' representation needs three accesses per "
          "texel, so equal miss rates still mean 3x the traffic.")


if __name__ == "__main__":
    main()

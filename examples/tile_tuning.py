#!/usr/bin/env python
"""Tune the tiled rasterization order (paper Section 6).

Sweeps screen-space tile sizes for a chosen scene and shows how the
tile dimensions trade off against cache size -- reproducing the
Figure 6.2 experiment interactively, plus the Hilbert-curve traversal
the paper's footnote 1 conjectures is optimal.

Each traversal order is a separate render, so this example benefits
most from :mod:`repro.engine`: all eight renders are cached in the
artifact store and a re-run (even across processes) replays them from
disk.

Run:  python examples/tile_tuning.py [scene] [scale]
"""

import sys

import numpy as np

from repro.analysis import format_table
from repro.core import miss_rate_curve
from repro.engine import Engine, TraceSpec

LAYOUT = ("blocked", 8)


def main() -> None:
    scene_name = sys.argv[1] if len(sys.argv) > 1 else "guitar"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

    engine = Engine()
    scene = engine.scene(scene_name, scale)
    hilbert_bits = int(np.ceil(np.log2(max(scene.width, scene.height))))

    orders = [("horizontal",)]
    orders += [("tiled", t) for t in (2, 4, 8, 16, 32, 64)]
    orders.append(("hilbert", hilbert_bits))

    cache_sizes = [512, 1024, 2048, 4096, 8192]
    line_size = 128
    rows = []
    for order_spec in orders:
        spec = TraceSpec(scene=scene_name, scale=scale, order=order_spec)
        streams = engine.streams(spec, LAYOUT)
        curve = miss_rate_curve(streams, line_size, cache_sizes)
        name = "-".join(str(part) for part in order_spec)
        rows.append([name] + [f"{100 * r:.2f}%" for r in curve.miss_rates])

    headers = ["order"] + [f"{s // 1024 or s}{'KB' if s >= 1024 else 'B'}"
                           for s in cache_sizes]
    print(format_table(
        headers, rows,
        title=(f"{scene_name} at {scene.width}x{scene.height}: miss rate vs "
               f"cache size (blocked 8x8, {line_size}B lines, fully assoc)")))
    print("\nMedium tiles minimize the working set for scenes with large "
          "triangles; tiny and huge tiles converge to the nontiled order.")


if __name__ == "__main__":
    main()

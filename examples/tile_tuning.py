#!/usr/bin/env python
"""Tune the tiled rasterization order (paper Section 6).

Sweeps screen-space tile sizes for a chosen scene and shows how the
tile dimensions trade off against cache size -- reproducing the
Figure 6.2 experiment interactively, plus the Hilbert-curve traversal
the paper's footnote 1 conjectures is optimal.

Run:  python examples/tile_tuning.py [scene] [scale]
"""

import sys

import numpy as np

from repro import (
    BlockedLayout,
    HilbertOrder,
    HorizontalOrder,
    TiledOrder,
    make_scene,
    miss_rate_curve,
    place_textures,
    render_trace,
)
from repro.analysis import format_table


def main() -> None:
    scene_name = sys.argv[1] if len(sys.argv) > 1 else "guitar"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

    scene = make_scene(scene_name).build(scale=scale)
    placements = place_textures(scene.get_mipmaps(), BlockedLayout(8))
    hilbert_bits = int(np.ceil(np.log2(max(scene.width, scene.height))))

    orders = [HorizontalOrder()]
    orders += [TiledOrder(t) for t in (2, 4, 8, 16, 32, 64)]
    orders.append(HilbertOrder(hilbert_bits))

    cache_sizes = [512, 1024, 2048, 4096, 8192]
    line_size = 128
    rows = []
    for order in orders:
        result = render_trace(scene, order=order)
        addresses = result.trace.byte_addresses(placements)
        curve = miss_rate_curve(addresses, line_size, cache_sizes)
        rows.append([order.name] + [f"{100 * r:.2f}%" for r in curve.miss_rates])

    headers = ["order"] + [f"{s // 1024 or s}{'KB' if s >= 1024 else 'B'}"
                           for s in cache_sizes]
    print(format_table(
        headers, rows,
        title=(f"{scene_name} at {scene.width}x{scene.height}: miss rate vs "
               f"cache size (blocked 8x8, {line_size}B lines, fully assoc)")))
    print("\nMedium tiles minimize the working set for scenes with large "
          "triangles; tiny and huge tiles converge to the nontiled order.")


if __name__ == "__main__":
    main()
